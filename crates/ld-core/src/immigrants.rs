//! Random immigrants (paper §4.4).
//!
//! "When the best individual is the same during λ generations, all the
//! individuals of the population, whose scores are under the mean, are
//! replaced by new individuals randomly generated."

use crate::individual::Haplotype;
use crate::rng::random_haplotype;
use crate::subpop::SubPopulation;
use rand::Rng;

/// How many random draws to attempt per needed immigrant before giving up
/// (duplicates of surviving members are re-drawn).
const DRAW_ATTEMPTS: usize = 20;

/// Apply the random-immigrant replacement to one subpopulation: drop every
/// individual strictly below the mean and return freshly drawn random
/// haplotypes (unevaluated) to take their places.
///
/// The caller evaluates the returned immigrants in its batched evaluation
/// phase and inserts them back; returning them unevaluated keeps the
/// policy decoupled from the (possibly parallel) evaluator.
pub fn replace_below_mean<R: Rng + ?Sized>(
    subpop: &mut SubPopulation,
    n_snps: usize,
    rng: &mut R,
) -> Vec<Haplotype> {
    let dropped = subpop.drain_below_mean();
    let needed = dropped.len();
    let mut immigrants: Vec<Haplotype> = Vec::with_capacity(needed);
    let mut attempts = 0usize;
    while immigrants.len() < needed && attempts < needed * DRAW_ATTEMPTS {
        attempts += 1;
        let candidate = random_haplotype(rng, n_snps, subpop.size_k());
        let duplicate =
            subpop.contains(&candidate) || immigrants.iter().any(|h| h.key() == candidate.key());
        if !duplicate {
            immigrants.push(candidate);
        }
    }
    immigrants
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn hap(snps: &[usize], fitness: f64) -> Haplotype {
        let mut h = Haplotype::new(snps.to_vec());
        h.set_fitness(fitness);
        h
    }

    #[test]
    fn replaces_exactly_the_below_mean_individuals() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut p = SubPopulation::new(2, 10);
        for (i, f) in [10.0, 9.0, 2.0, 1.0].iter().enumerate() {
            p.try_insert(hap(&[i, i + 20], *f));
        }
        // Mean 5.5: two survivors, two immigrants needed.
        let imms = replace_below_mean(&mut p, 51, &mut rng);
        assert_eq!(imms.len(), 2);
        assert_eq!(p.len(), 2);
        assert!(p.individuals().iter().all(|h| h.fitness() >= 5.5));
        for h in &imms {
            assert_eq!(h.size(), 2);
            assert!(!h.is_evaluated());
            assert!(!p.contains(h));
        }
        // Immigrants are mutually distinct.
        assert_ne!(imms[0].key(), imms[1].key());
    }

    #[test]
    fn uniform_population_needs_no_immigrants() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut p = SubPopulation::new(2, 5);
        p.try_insert(hap(&[1, 2], 4.0));
        p.try_insert(hap(&[2, 3], 4.0));
        assert!(replace_below_mean(&mut p, 51, &mut rng).is_empty());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn tiny_panel_caps_immigrant_count() {
        // Panel of 3 SNPs holds only 3 distinct size-2 haplotypes; if the
        // survivors already use them all, no immigrant can be drawn.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut p = SubPopulation::new(2, 5);
        p.try_insert(hap(&[0, 1], 10.0));
        p.try_insert(hap(&[0, 2], 10.0));
        p.try_insert(hap(&[1, 2], 1.0)); // below mean, will be dropped
        let imms = replace_below_mean(&mut p, 3, &mut rng);
        // The only possible immigrant is [1,2] itself or a survivor dup —
        // [1,2] was dropped from the population, so it may be redrawn.
        for h in &imms {
            assert!(!p.contains(h));
        }
        assert!(imms.len() <= 1);
    }
}
