//! Fitness evaluation abstraction.
//!
//! The engine talks to fitness through [`Evaluator`], whose unit of work is
//! a *batch* of individuals: the paper evaluates each generation's offspring
//! in a synchronous parallel phase (Figure 6), and the batch boundary is
//! exactly where `ld-parallel`'s master/slave evaluator plugs in. The
//! default [`Evaluator::evaluate_batch`] is sequential.
//!
//! Wrappers:
//! * [`StatsEvaluator`] — the real objective (EH-DIALL → CLUMP pipeline);
//! * [`CountingEvaluator`] — atomically counts evaluations (the paper's
//!   primary cost metric, Table 2's "# of Eval." columns);
//! * [`CachingEvaluator`] — memoizes by SNP set, exploiting the GA's many
//!   duplicate candidates; the cache is sharded (one shard per hardware
//!   thread) to stay scalable under a parallel evaluator, and can be
//!   bounded with [`CachingEvaluator::with_capacity`].

use crate::individual::Haplotype;
use crate::sched::{EvalBackendError, FaultEvents, ShardedCache};
use ld_data::SnpId;
use ld_stats::{EvalPipeline, EvalScratch, FitnessKind};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Batch-oriented fitness function.
pub trait Evaluator: Send + Sync {
    /// Width of the SNP panel (bounds haplotype contents).
    fn n_snps(&self) -> usize;

    /// Evaluate one haplotype.
    fn evaluate_one(&self, snps: &[SnpId]) -> f64;

    /// Evaluate one haplotype using a caller-owned scratch workspace.
    ///
    /// This is the hot-loop entry point: workers that evaluate many
    /// haplotypes in sequence hold one [`EvalScratch`] for their lifetime
    /// and pass it here, so the statistics kernel reuses its buffers
    /// instead of allocating per call. Evaluators whose kernel doesn't use
    /// scratch (closures, remote proxies) fall back to
    /// [`Evaluator::evaluate_one`].
    fn evaluate_one_with(&self, scratch: &mut EvalScratch, snps: &[SnpId]) -> f64 {
        let _ = scratch;
        self.evaluate_one(snps)
    }

    /// Evaluate a batch in place (sets each individual's fitness).
    ///
    /// The default runs sequentially over one scratch workspace; parallel
    /// evaluators override this.
    fn evaluate_batch(&self, batch: &mut [Haplotype]) {
        let mut scratch = EvalScratch::new();
        for h in batch.iter_mut() {
            let f = self.evaluate_one_with(&mut scratch, h.snps());
            h.set_fitness(f);
        }
    }

    /// Fallible batch evaluation, for evaluators backed by infrastructure
    /// that can fail (a TCP slave pool, a thread pool whose workers died).
    ///
    /// Local evaluators cannot fail, so the default simply delegates to
    /// [`Evaluator::evaluate_batch`] and returns `Ok`. On `Err`, completed
    /// jobs must be left evaluated and untouched jobs unevaluated (the
    /// [`crate::EvalBackend`] residue contract).
    fn try_evaluate_batch(&self, batch: &mut [Haplotype]) -> Result<(), EvalBackendError> {
        self.evaluate_batch(batch);
        Ok(())
    }

    /// Drain fault-recovery events absorbed since the last call (see
    /// [`crate::EvalBackend::take_fault_events`]). Local evaluators have
    /// nothing to report.
    fn take_fault_events(&self) -> FaultEvents {
        FaultEvents::default()
    }
}

/// The paper's objective function: EH-DIALL per status group, then a CLUMP
/// statistic on the concatenated table (see `ld-stats::fitness`).
///
/// Holds a per-instance [`EvalScratch`] behind a mutex so that even the
/// scratch-less [`Evaluator::evaluate_one`] entry point reuses buffers;
/// concurrent callers should prefer [`Evaluator::evaluate_one_with`] with
/// their own worker-local scratch, which bypasses the lock entirely.
#[derive(Debug)]
pub struct StatsEvaluator {
    pipeline: EvalPipeline,
    scratch: Mutex<EvalScratch>,
}

impl Clone for StatsEvaluator {
    fn clone(&self) -> Self {
        // Scratch is transient working state: the clone warms its own.
        StatsEvaluator {
            pipeline: self.pipeline.clone(),
            scratch: Mutex::new(EvalScratch::new()),
        }
    }
}

impl StatsEvaluator {
    /// Wrap an evaluation pipeline.
    pub fn new(pipeline: EvalPipeline) -> Self {
        StatsEvaluator {
            pipeline,
            scratch: Mutex::new(EvalScratch::new()),
        }
    }

    /// Build directly from a dataset.
    pub fn from_dataset(
        dataset: &ld_data::Dataset,
        kind: FitnessKind,
    ) -> Result<Self, ld_stats::StatsError> {
        Ok(StatsEvaluator::new(EvalPipeline::new(dataset, kind)?))
    }

    /// The wrapped pipeline.
    pub fn pipeline(&self) -> &EvalPipeline {
        &self.pipeline
    }
}

impl Evaluator for StatsEvaluator {
    fn n_snps(&self) -> usize {
        self.pipeline.n_snps()
    }

    fn evaluate_one(&self, snps: &[SnpId]) -> f64 {
        self.evaluate_one_with(&mut self.scratch.lock(), snps)
    }

    fn evaluate_one_with(&self, scratch: &mut EvalScratch, snps: &[SnpId]) -> f64 {
        // Evaluation errors (degenerate EM input, e.g. every individual
        // missing at these SNPs) mean "no evidence of association": score 0.
        self.pipeline.evaluate_with(scratch, snps).unwrap_or(0.0)
    }

    fn evaluate_batch(&self, batch: &mut [Haplotype]) {
        // Lock the instance scratch once for the whole batch.
        let mut scratch = self.scratch.lock();
        for h in batch.iter_mut() {
            let f = self.evaluate_one_with(&mut scratch, h.snps());
            h.set_fitness(f);
        }
    }
}

/// Counts evaluations flowing through an inner evaluator.
#[derive(Debug)]
pub struct CountingEvaluator<E> {
    inner: E,
    count: AtomicU64,
}

impl<E: Evaluator> CountingEvaluator<E> {
    /// Wrap `inner` with a zeroed counter.
    pub fn new(inner: E) -> Self {
        CountingEvaluator {
            inner,
            count: AtomicU64::new(0),
        }
    }

    /// Evaluations performed so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Reset the counter.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }

    /// Unwrap the inner evaluator.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: Evaluator> Evaluator for CountingEvaluator<E> {
    fn n_snps(&self) -> usize {
        self.inner.n_snps()
    }

    fn evaluate_one(&self, snps: &[SnpId]) -> f64 {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.evaluate_one(snps)
    }

    fn evaluate_one_with(&self, scratch: &mut EvalScratch, snps: &[SnpId]) -> f64 {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.evaluate_one_with(scratch, snps)
    }

    fn evaluate_batch(&self, batch: &mut [Haplotype]) {
        self.count.fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.inner.evaluate_batch(batch);
    }

    fn try_evaluate_batch(&self, batch: &mut [Haplotype]) -> Result<(), EvalBackendError> {
        self.count.fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.inner.try_evaluate_batch(batch)
    }

    fn take_fault_events(&self) -> FaultEvents {
        self.inner.take_fault_events()
    }
}

/// Memoizes fitness by SNP set.
///
/// The GA frequently regenerates identical candidates (crossover of
/// overlapping parents, repeated SNP-mutation neighbours); caching converts
/// those into hash lookups over a [`ShardedCache`] (one shard per hardware
/// thread, optionally bounded). Batch evaluation also coalesces intra-batch
/// duplicates, so a miss appearing twice in one batch costs a single inner
/// evaluation. Note the eval *counter* wraps the cache or the inner
/// evaluator depending on which cost you want to measure — the paper counts
/// true evaluations, so the harness uses
/// `CachingEvaluator<CountingEvaluator<StatsEvaluator>>` (see `DESIGN.md`
/// §"Evaluation accounting").
#[derive(Debug)]
pub struct CachingEvaluator<E> {
    inner: E,
    cache: ShardedCache,
}

impl<E: Evaluator> CachingEvaluator<E> {
    /// Wrap `inner` with an empty unbounded cache.
    pub fn new(inner: E) -> Self {
        CachingEvaluator {
            inner,
            cache: ShardedCache::unbounded(),
        }
    }

    /// Wrap `inner` with a cache bounded to roughly `capacity` SNP sets
    /// (0 = unbounded). Eviction is O(1) amortized generational.
    pub fn with_capacity(inner: E, capacity: usize) -> Self {
        CachingEvaluator {
            inner,
            cache: ShardedCache::with_capacity(capacity),
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Access the wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: Evaluator> Evaluator for CachingEvaluator<E> {
    fn n_snps(&self) -> usize {
        self.inner.n_snps()
    }

    fn evaluate_one(&self, snps: &[SnpId]) -> f64 {
        if let Some(f) = self.cache.probe(snps) {
            return f;
        }
        let f = self.inner.evaluate_one(snps);
        self.cache.insert(snps.to_vec(), f);
        f
    }

    fn evaluate_one_with(&self, scratch: &mut EvalScratch, snps: &[SnpId]) -> f64 {
        if let Some(f) = self.cache.probe(snps) {
            return f;
        }
        let f = self.inner.evaluate_one_with(scratch, snps);
        self.cache.insert(snps.to_vec(), f);
        f
    }

    fn evaluate_batch(&self, batch: &mut [Haplotype]) {
        // Serve hits and coalesce duplicate misses, then delegate the
        // unique misses as one (possibly parallel) inner batch.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut by_key: HashMap<Vec<SnpId>, usize> = HashMap::new();
        for (i, h) in batch.iter_mut().enumerate() {
            if let Some(f) = self.cache.probe(h.snps()) {
                h.set_fitness(f);
            } else {
                match by_key.get(h.snps()) {
                    Some(&g) => groups[g].push(i),
                    None => {
                        by_key.insert(h.snps().to_vec(), groups.len());
                        groups.push(vec![i]);
                    }
                }
            }
        }
        if groups.is_empty() {
            return;
        }
        let mut misses: Vec<Haplotype> = groups
            .iter()
            .map(|g| Haplotype::from_sorted(batch[g[0]].snps().to_vec()))
            .collect();
        self.inner.evaluate_batch(&mut misses);
        for (g, m) in groups.iter().zip(misses) {
            self.cache.insert(m.snps().to_vec(), m.fitness());
            for &i in g {
                batch[i].set_fitness(m.fitness());
            }
        }
    }

    fn take_fault_events(&self) -> FaultEvents {
        self.inner.take_fault_events()
    }
}

/// Closure-backed evaluator for tests and toy objectives.
pub struct FnEvaluator<F> {
    n_snps: usize,
    f: F,
}

impl<F> FnEvaluator<F>
where
    F: Fn(&[SnpId]) -> f64 + Send + Sync,
{
    /// Wrap a closure over an `n_snps`-wide panel.
    pub fn new(n_snps: usize, f: F) -> Self {
        FnEvaluator { n_snps, f }
    }
}

impl<F> Evaluator for FnEvaluator<F>
where
    F: Fn(&[SnpId]) -> f64 + Send + Sync,
{
    fn n_snps(&self) -> usize {
        self.n_snps
    }

    fn evaluate_one(&self, snps: &[SnpId]) -> f64 {
        (self.f)(snps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        // Fitness = sum of SNP ids (deterministic, monotone in content).
        FnEvaluator::new(51, |s: &[SnpId]| s.iter().sum::<usize>() as f64)
    }

    #[test]
    fn default_batch_is_sequential_map() {
        let e = toy();
        let mut batch = vec![Haplotype::new(vec![1, 2]), Haplotype::new(vec![10, 20])];
        e.evaluate_batch(&mut batch);
        assert_eq!(batch[0].fitness(), 3.0);
        assert_eq!(batch[1].fitness(), 30.0);
    }

    #[test]
    fn counting_counts_both_paths() {
        let e = CountingEvaluator::new(toy());
        assert_eq!(e.count(), 0);
        let _ = e.evaluate_one(&[1, 2]);
        assert_eq!(e.count(), 1);
        let mut batch = vec![Haplotype::new(vec![3]); 5];
        e.evaluate_batch(&mut batch);
        assert_eq!(e.count(), 6);
        e.reset();
        assert_eq!(e.count(), 0);
    }

    #[test]
    fn caching_avoids_recomputation() {
        let e = CachingEvaluator::new(CountingEvaluator::new(toy()));
        assert!(e.is_empty());
        assert_eq!(e.evaluate_one(&[1, 2, 3]), 6.0);
        assert_eq!(e.evaluate_one(&[1, 2, 3]), 6.0);
        assert_eq!(e.inner().count(), 1);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn caching_batch_mixes_hits_and_misses() {
        let e = CachingEvaluator::new(CountingEvaluator::new(toy()));
        let _ = e.evaluate_one(&[1, 2]);
        let mut batch = vec![
            Haplotype::new(vec![1, 2]), // hit
            Haplotype::new(vec![4, 5]), // miss
            Haplotype::new(vec![4, 5]), // duplicate miss in same batch:
                                        // coalesced into one inner eval
        ];
        e.evaluate_batch(&mut batch);
        assert_eq!(batch[0].fitness(), 3.0);
        assert_eq!(batch[1].fitness(), 9.0);
        assert_eq!(batch[2].fitness(), 9.0);
        // 1 initial + 1 unique miss (intra-batch duplicates coalesce).
        assert_eq!(e.inner().count(), 2);
        // Cache now holds both keys.
        assert_eq!(e.len(), 2);
        // Re-evaluating the whole batch is free.
        e.evaluate_batch(&mut batch);
        assert_eq!(e.inner().count(), 2);
    }

    #[test]
    fn bounded_caching_evaluator_stays_bounded() {
        let e = CachingEvaluator::with_capacity(CountingEvaluator::new(toy()), 32);
        for i in 0..5000usize {
            let _ = e.evaluate_one(&[i % 51, (i / 51) % 51 + 100]);
        }
        // Generational eviction keeps residency near capacity instead of
        // growing with the number of distinct keys seen.
        assert!(e.len() < 5000 / 2, "cache never evicted: {}", e.len());
        // Recent keys are still served without recomputation.
        let before = e.inner().count();
        let _ = e.evaluate_one(&[4999 % 51, (4999 / 51) % 51 + 100]);
        assert_eq!(e.inner().count(), before);
    }

    #[test]
    fn stats_evaluator_over_synthetic_data() {
        let d = ld_data::synthetic::lille_51(42);
        let e = StatsEvaluator::from_dataset(&d, FitnessKind::ClumpT1).unwrap();
        assert_eq!(e.n_snps(), 51);
        let signal = e.evaluate_one(&[8, 12, 15]);
        let noise = e.evaluate_one(&[0, 24, 38]);
        assert!(signal > noise);
        // Error path: empty haplotype scores 0 instead of panicking.
        assert_eq!(e.evaluate_one(&[]), 0.0);
    }
}
