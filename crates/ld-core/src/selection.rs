//! Parent-selection strategies.
//!
//! The paper does not pin its selection operator ("Selection" box of
//! Figure 5); tournament selection is the default here, with the other
//! classic schemes available for ablation:
//!
//! * **Tournament(t)** — draw `t` members, keep the fittest; selection
//!   pressure grows with `t`.
//! * **RankRoulette** — roulette wheel over linear rank weights (best gets
//!   weight `n`, worst gets `1`); rank-based, so it is invariant to the
//!   fitness scale — important here, where fitness ranges differ wildly
//!   between subpopulations.
//! * **Uniform** — no selection pressure (drift baseline).
//!
//! All strategies operate on *indices into a best-first-sorted
//! subpopulation*, which is the invariant [`crate::subpop::SubPopulation`]
//! maintains.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which parent-selection scheme the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Keep the best of `t` uniform draws.
    Tournament(usize),
    /// Roulette wheel over linear rank weights.
    RankRoulette,
    /// Uniform random (no pressure).
    Uniform,
}

impl Default for SelectionStrategy {
    fn default() -> Self {
        SelectionStrategy::Tournament(2)
    }
}

impl SelectionStrategy {
    /// Select an index into a best-first-sorted population of `n` members.
    /// When `distinct_from` is given and `n > 1`, one colliding draw is
    /// re-rolled (best-effort distinctness, as the engine wants two
    /// different parents when possible).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn select<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
        distinct_from: Option<usize>,
    ) -> usize {
        assert!(n > 0, "cannot select from an empty population");
        let raw = match self {
            SelectionStrategy::Tournament(t) => {
                let mut best = usize::MAX;
                for _ in 0..(*t).max(1) {
                    let idx = rng.random_range(0..n);
                    // Sorted best-first: a smaller index is a fitter member.
                    if idx < best {
                        best = idx;
                    }
                }
                best
            }
            SelectionStrategy::RankRoulette => {
                // Weight of index i (0 = best) is n - i; total n(n+1)/2.
                let total = n * (n + 1) / 2;
                let mut u = rng.random_range(0..total);
                let mut idx = 0usize;
                loop {
                    let w = n - idx;
                    if u < w {
                        break idx;
                    }
                    u -= w;
                    idx += 1;
                }
            }
            SelectionStrategy::Uniform => rng.random_range(0..n),
        };
        if Some(raw) == distinct_from && n > 1 {
            (raw + 1 + rng.random_range(0..n - 1)) % n
        } else {
            raw
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        match self {
            SelectionStrategy::Tournament(t) => format!("tournament({t})"),
            SelectionStrategy::RankRoulette => "rank-roulette".into(),
            SelectionStrategy::Uniform => "uniform".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(17)
    }

    fn frequencies(strategy: SelectionStrategy, n: usize, draws: usize) -> Vec<f64> {
        let mut rng = rng();
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[strategy.select(&mut rng, n, None)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn tournament_prefers_low_indices() {
        let f = frequencies(SelectionStrategy::Tournament(2), 10, 20000);
        // P(best of 2 draws = i) decreases with i; index 0 ≈ 19/100.
        assert!((f[0] - 0.19).abs() < 0.02, "f0 = {}", f[0]);
        for w in f.windows(2) {
            assert!(w[0] > w[1] - 0.02, "non-monotone {f:?}");
        }
    }

    #[test]
    fn bigger_tournament_means_more_pressure() {
        let f2 = frequencies(SelectionStrategy::Tournament(2), 10, 20000);
        let f5 = frequencies(SelectionStrategy::Tournament(5), 10, 20000);
        assert!(f5[0] > f2[0] + 0.1, "t=5 {} vs t=2 {}", f5[0], f2[0]);
    }

    #[test]
    fn rank_roulette_matches_linear_weights() {
        let n = 5;
        let f = frequencies(SelectionStrategy::RankRoulette, n, 30000);
        let total = (n * (n + 1) / 2) as f64;
        for (i, &p) in f.iter().enumerate() {
            let expect = (n - i) as f64 / total;
            assert!((p - expect).abs() < 0.01, "idx {i}: {p} vs {expect}");
        }
    }

    #[test]
    fn uniform_is_flat() {
        let f = frequencies(SelectionStrategy::Uniform, 8, 20000);
        for &p in &f {
            assert!((p - 0.125).abs() < 0.015, "{f:?}");
        }
    }

    #[test]
    fn distinct_from_is_respected_when_possible() {
        let mut rng = rng();
        for strategy in [
            SelectionStrategy::Tournament(3),
            SelectionStrategy::RankRoulette,
            SelectionStrategy::Uniform,
        ] {
            for _ in 0..500 {
                let idx = strategy.select(&mut rng, 6, Some(2));
                assert_ne!(idx, 2, "{strategy:?} returned the excluded index");
            }
            // n == 1: exclusion impossible, must still return 0.
            assert_eq!(strategy.select(&mut rng, 1, Some(0)), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        let mut rng = rng();
        let _ = SelectionStrategy::default().select(&mut rng, 0, None);
    }

    #[test]
    fn labels() {
        assert_eq!(SelectionStrategy::Tournament(2).label(), "tournament(2)");
        assert_eq!(SelectionStrategy::RankRoulette.label(), "rank-roulette");
        assert_eq!(SelectionStrategy::Uniform.label(), "uniform");
    }
}
