//! Unified batch-evaluation scheduling.
//!
//! Every synchronous evaluation phase of the GA — the initial population,
//! crossover children, mutation candidates, random immigrants, injected
//! migrants — flows through one [`EvalService`]. The service owns the full
//! batch lifecycle as composable stages:
//!
//! 1. **collect** — callers hand over one batch per phase; already-evaluated
//!    individuals (clone pass-through parents, pre-scored migrants) are
//!    skipped for free;
//! 2. **feasibility** — the §2.3 constraint filter lives here; callers
//!    invoke it at the point the GA semantics require (see
//!    [`EvalService::retain_feasible`]);
//! 3. **coalesce** — intra-batch duplicates of the same SNP set are folded
//!    into a single job whose fitness is fanned back out;
//! 4. **cache probe** — an optional bounded, sharded memo table serves
//!    previously seen SNP sets without touching the backend;
//! 5. **dispatch** — residual misses go to a pluggable [`EvalBackend`]
//!    (sequential, thread pool, rayon, or a TCP slave pool), timed and
//!    counted.
//!
//! Accounting semantics (see also `DESIGN.md` §"Evaluation accounting"):
//! [`EvalService::submit`] returns the number of *scheduled* evaluations —
//! unique unevaluated SNP sets after coalescing, **before** the cache probe.
//! The engine sums these into `RunResult::total_evaluations`, so the metric
//! is a pure function of the GA trajectory and is unaffected by cache
//! warmth (the count is the same whether a probe hits or misses; v2
//! checkpoints snapshot the hot tier so warmth itself also survives
//! resume). The number of
//! evaluations that actually reached the backend is
//! [`SchedStats::true_evals`]; with the cache disabled (the default) the two
//! are equal.
//!
//! **Failure model** (see `DESIGN.md` §"Failure model of the evaluation
//! layer"): [`EvalBackend::dispatch`] is fallible. A distributed backend
//! retries and requeues internally; only when it cannot make progress at
//! all (every remote worker dead) does it return
//! [`EvalBackendError::AllWorkersFailed`], leaving the jobs it did finish
//! evaluated. The service then re-dispatches the residue to the configured
//! [`EvalService::with_fallback`] backend (typically a local evaluator), or
//! surfaces the typed error to the engine when no fallback exists. Fault
//! events the backend recovered from (retries, retirements, rejoins,
//! requeued jobs) are drained after every dispatch via
//! [`EvalBackend::take_fault_events`] and folded into [`SchedStats`].

use crate::evaluator::Evaluator;
use crate::individual::Haplotype;
use crate::store::{CacheSnapshot, FitnessStore};
use ld_data::{DatasetFingerprint, SnpId};
use ld_observe::span::names as span_names;
use ld_observe::{Counter, Event, Histogram, Observer, LATENCY_MS_BUCKETS};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Optional feasibility predicate applied to candidates before they are
/// evaluated (the §2.3 LD / frequency constraints).
pub type FeasibilityFilter = Arc<dyn Fn(&[SnpId]) -> bool + Send + Sync>;

/// A batch dispatch failed in a way the backend could not recover from.
///
/// Distributed backends retry, reconnect and requeue internally; this error
/// is the end of that ladder. Jobs the backend did finish before failing
/// are left evaluated in the batch, so a caller (or the service's fallback
/// stage) only has to re-dispatch the unevaluated residue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalBackendError {
    /// Every remote worker has failed (and could not be rejoined), with
    /// `outstanding` of `total` jobs still unevaluated.
    AllWorkersFailed {
        /// Jobs left unevaluated when the backend gave up.
        outstanding: usize,
        /// Jobs in the failed batch.
        total: usize,
    },
    /// Any other unrecoverable backend failure.
    Backend(String),
    /// The backend refused the batch up front because the tenant already
    /// has its maximum number of batches in flight (backpressure). No job
    /// in the batch was touched; retry after in-flight batches drain.
    Saturated {
        /// Batches the tenant already has in flight.
        outstanding: usize,
        /// The per-tenant in-flight limit that was hit.
        limit: usize,
    },
}

impl std::fmt::Display for EvalBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalBackendError::AllWorkersFailed { outstanding, total } => write!(
                f,
                "every evaluation worker failed with {outstanding} of {total} jobs outstanding"
            ),
            EvalBackendError::Backend(msg) => write!(f, "evaluation backend failed: {msg}"),
            EvalBackendError::Saturated { outstanding, limit } => write!(
                f,
                "tenant saturated: {outstanding} batches in flight (limit {limit})"
            ),
        }
    }
}

impl std::error::Error for EvalBackendError {}

/// Fault-recovery events a backend absorbed since the last drain.
///
/// Backends that retry/reconnect (e.g. a TCP slave pool) accumulate these
/// internally; [`EvalService`] drains them after every dispatch and folds
/// them into [`SchedStats`], from where they reach per-generation telemetry
/// and the history TSV.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultEvents {
    /// Requests re-sent after a per-request failure or deadline expiry.
    pub retries: u64,
    /// Workers given up on (retired) after exhausting their retries.
    pub retirements: u64,
    /// Previously retired workers that reconnected and took work again.
    pub rejoins: u64,
    /// Jobs pushed back onto the work queue after a worker failure
    /// (requeued, never lost).
    pub requeued: u64,
}

impl FaultEvents {
    /// Whether any event was recorded.
    pub fn is_empty(&self) -> bool {
        *self == FaultEvents::default()
    }

    /// Fold another drain into this one.
    pub fn merge(&mut self, other: &FaultEvents) {
        self.retries += other.retries;
        self.retirements += other.retirements;
        self.rejoins += other.rejoins;
        self.requeued += other.requeued;
    }
}

/// A multi-tenant work queue with priority-weighted deficit round-robin
/// claim order.
///
/// Each registered run owns a FIFO of pending items and a `weight` (its
/// priority). [`WeightedFairQueue::claim`] visits runs in a fixed ring
/// order; a run with items gets a *deficit* of `weight` claims before the
/// cursor moves on, so over any window in which all runs stay backlogged,
/// run `r` receives `weight_r / Σ weights` of the claims. Two properties
/// make it safe to share one slave fleet between tenants:
///
/// * **starvation bound** — a backlogged run is never skipped for more
///   than `Σ other weights` consecutive claims, regardless of how large
///   or hot the other tenants are;
/// * **per-run FIFO** — items of one run are always claimed in push
///   order (requeues use [`WeightedFairQueue::push_front`] to keep a
///   failed job at the head of its run's line).
///
/// The queue is not internally synchronized; callers wrap it in their own
/// mutex (a dispatch loop typically pairs it with a condvar).
#[derive(Debug)]
pub struct WeightedFairQueue<T> {
    runs: Vec<FairRun<T>>,
    cursor: usize,
    len: usize,
}

#[derive(Debug)]
struct FairRun<T> {
    id: u64,
    weight: u32,
    deficit: u32,
    items: std::collections::VecDeque<T>,
}

impl<T> Default for WeightedFairQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WeightedFairQueue<T> {
    /// An empty queue with no registered runs.
    pub fn new() -> Self {
        WeightedFairQueue {
            runs: Vec::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Register run `id` with the given priority `weight` (clamped to
    /// ≥ 1). Re-registering an existing run only updates its weight.
    pub fn register(&mut self, id: u64, weight: u32) {
        let weight = weight.max(1);
        if let Some(r) = self.runs.iter_mut().find(|r| r.id == id) {
            r.weight = weight;
            r.deficit = r.deficit.min(weight);
        } else {
            self.runs.push(FairRun {
                id,
                weight,
                deficit: 0,
                items: std::collections::VecDeque::new(),
            });
        }
    }

    /// Remove run `id`, dropping its pending items; returns how many
    /// were dropped.
    pub fn unregister(&mut self, id: u64) -> usize {
        match self.runs.iter().position(|r| r.id == id) {
            None => 0,
            Some(idx) => {
                let dropped = self.runs.remove(idx).items.len();
                self.len -= dropped;
                if idx < self.cursor {
                    self.cursor -= 1;
                }
                if !self.runs.is_empty() {
                    self.cursor %= self.runs.len();
                } else {
                    self.cursor = 0;
                }
                dropped
            }
        }
    }

    /// Append an item to run `id`'s FIFO. Returns `false` (dropping the
    /// item) if the run is not registered.
    pub fn push(&mut self, id: u64, item: T) -> bool {
        match self.runs.iter_mut().find(|r| r.id == id) {
            Some(r) => {
                r.items.push_back(item);
                self.len += 1;
                true
            }
            None => false,
        }
    }

    /// Put an item back at the *head* of run `id`'s FIFO (requeue after
    /// a worker failure). Returns `false` if the run is not registered.
    pub fn push_front(&mut self, id: u64, item: T) -> bool {
        match self.runs.iter_mut().find(|r| r.id == id) {
            Some(r) => {
                r.items.push_front(item);
                self.len += 1;
                true
            }
            None => false,
        }
    }

    /// Claim the next item under deficit round-robin, returning the
    /// owning run's id alongside it; `None` when every run is idle.
    pub fn claim(&mut self) -> Option<(u64, T)> {
        if self.len == 0 || self.runs.is_empty() {
            return None;
        }
        // At most one full lap: `len > 0` guarantees a non-empty run.
        for _ in 0..self.runs.len() {
            let n = self.runs.len();
            let r = &mut self.runs[self.cursor];
            if r.items.is_empty() {
                // An idle run forfeits its remaining deficit — otherwise
                // it could burst ahead of schedule once work arrives.
                r.deficit = 0;
                self.cursor = (self.cursor + 1) % n;
                continue;
            }
            if r.deficit == 0 {
                r.deficit = r.weight;
            }
            r.deficit -= 1;
            let item = r.items.pop_front().expect("non-empty run FIFO");
            self.len -= 1;
            let id = r.id;
            if r.deficit == 0 {
                self.cursor = (self.cursor + 1) % n;
            }
            return Some((id, item));
        }
        unreachable!("len > 0 but no run had items");
    }

    /// Total pending items across all runs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pending items for one run (`None` if it is not registered).
    pub fn run_len(&self, id: u64) -> Option<usize> {
        self.runs.iter().find(|r| r.id == id).map(|r| r.items.len())
    }

    /// Number of registered runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Drop every pending item for which `predicate` returns `true`
    /// (e.g. jobs of a batch that already failed); returns how many
    /// were removed. Relative order of survivors is preserved.
    pub fn purge(&mut self, mut predicate: impl FnMut(u64, &T) -> bool) -> usize {
        let mut removed = 0;
        for r in &mut self.runs {
            let before = r.items.len();
            r.items.retain(|item| !predicate(r.id, item));
            removed += before - r.items.len();
        }
        self.len -= removed;
        removed
    }
}

/// A batch-evaluation executor: the pluggable dispatch stage of
/// [`EvalService`].
///
/// Implementors receive batches whose members are all unevaluated and all
/// distinct (the service has already coalesced duplicates and served cache
/// hits). `ld-core` provides the sequential [`EvaluatorBackend`] adapter;
/// `ld-parallel` implements this trait for its thread-pool evaluators and
/// `ld-net` for its TCP slave pool, so every parallel substrate shares one
/// dispatch seam.
pub trait EvalBackend: Send + Sync {
    /// Width of the SNP panel (bounds haplotype contents).
    fn n_snps(&self) -> usize;

    /// Evaluate every individual in `batch` in place.
    ///
    /// On failure the backend must leave completed jobs evaluated and
    /// untouched jobs unevaluated, so the caller can re-dispatch the
    /// residue elsewhere (see [`EvalBackendError`]).
    fn dispatch(&self, batch: &mut [Haplotype]) -> Result<(), EvalBackendError>;

    /// Drain the fault-recovery events absorbed since the last call.
    ///
    /// Local backends have nothing to report; distributed backends return
    /// their retry/retire/rejoin/requeue counters here.
    fn take_fault_events(&self) -> FaultEvents {
        FaultEvents::default()
    }

    /// Jobs currently queued inside the backend but not yet completed.
    ///
    /// Synchronous backends drain their queue before returning from
    /// [`EvalBackend::dispatch`], so this is usually 0 between batches; it
    /// is sampled by the service just before dispatch to expose residual
    /// depth (e.g. a net master with retried jobs in flight).
    fn queue_depth(&self) -> usize {
        0
    }

    /// Short backend label for telemetry.
    fn backend_name(&self) -> &'static str {
        "backend"
    }
}

/// Adapts any [`Evaluator`] into a sequential-dispatch [`EvalBackend`].
///
/// This is the default engine backend: it preserves the historical
/// semantics where the engine talks to an `&E` and parallel evaluators
/// override `Evaluator::evaluate_batch`.
pub struct EvaluatorBackend<'e, E: Evaluator + ?Sized> {
    inner: &'e E,
}

impl<'e, E: Evaluator + ?Sized> EvaluatorBackend<'e, E> {
    /// Wrap a borrowed evaluator.
    pub fn new(inner: &'e E) -> Self {
        EvaluatorBackend { inner }
    }

    /// The wrapped evaluator.
    pub fn evaluator(&self) -> &'e E {
        self.inner
    }
}

impl<E: Evaluator + ?Sized> EvalBackend for EvaluatorBackend<'_, E> {
    fn n_snps(&self) -> usize {
        self.inner.n_snps()
    }

    fn dispatch(&self, batch: &mut [Haplotype]) -> Result<(), EvalBackendError> {
        self.inner.try_evaluate_batch(batch)
    }

    fn take_fault_events(&self) -> FaultEvents {
        self.inner.take_fault_events()
    }

    fn backend_name(&self) -> &'static str {
        "evaluator"
    }
}

/// Number of cache shards: one per available hardware thread (clamped to a
/// sane range), so concurrent evaluation workers rarely contend on a lock.
pub(crate) fn default_shard_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8)
        .next_power_of_two()
        .clamp(1, 64)
}

/// One shard's exported `(young, old)` generations, as entry lists
/// (see [`ShardedCache::export_generations`]).
pub(crate) type ShardGenerations<V> = (Vec<(Vec<SnpId>, V)>, Vec<(Vec<SnpId>, V)>);

/// One shard: two hash-map generations for O(1) amortized eviction.
#[derive(Debug)]
struct Shard<V> {
    young: HashMap<Vec<SnpId>, V>,
    old: HashMap<Vec<SnpId>, V>,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            young: HashMap::new(),
            old: HashMap::new(),
        }
    }
}

/// A bounded, sharded fitness memo table — the *hot tier* of the
/// [`crate::store::FitnessStore`].
///
/// Keys are sorted SNP sets; shard choice is an FNV fold over the ids.
/// Boundedness uses a two-generation scheme: inserts land in the *young*
/// generation; when it fills its budget the *old* generation is dropped and
/// young becomes old. Hits in the old generation are promoted. Eviction is
/// therefore O(1) amortized with no per-entry bookkeeping, at the cost of a
/// resident size that can transiently reach ~2× the configured capacity.
///
/// The value type is generic (default `f64`, the historical shape) so the
/// tiered store can annotate entries with provenance without a parallel
/// table that would desynchronize on eviction.
#[derive(Debug)]
pub struct ShardedCache<V = f64> {
    shards: Vec<RwLock<Shard<V>>>,
    /// Young-generation budget per shard; `usize::MAX` when unbounded.
    per_shard: usize,
    capacity: usize,
}

impl<V: Clone> ShardedCache<V> {
    /// An unbounded cache (the historical [`crate::CachingEvaluator`]
    /// behaviour).
    pub fn unbounded() -> Self {
        Self::with_capacity(0)
    }

    /// A cache holding roughly `capacity` SNP sets (0 = unbounded).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_shards(capacity, default_shard_count())
    }

    /// A cache with an explicit shard count. Checkpoint restore uses this
    /// so a snapshot taken on one machine rebuilds with the same shard
    /// geometry (and therefore the same eviction trajectory) on another.
    pub(crate) fn with_shards(capacity: usize, n: usize) -> Self {
        let n = n.max(1);
        ShardedCache {
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            per_shard: if capacity == 0 {
                usize::MAX
            } else {
                capacity.div_ceil(n).max(1)
            },
            capacity,
        }
    }

    /// The configured capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, snps: &[SnpId]) -> &RwLock<Shard<V>> {
        // Cheap FNV-style fold over the SNP ids.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &s in snps {
            h = (h ^ s as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Look up a SNP set, promoting old-generation hits.
    pub fn probe(&self, snps: &[SnpId]) -> Option<V> {
        let shard = self.shard(snps);
        {
            let s = shard.read();
            if let Some(f) = s.young.get(snps) {
                return Some(f.clone());
            }
            if !s.old.contains_key(snps) {
                return None;
            }
        }
        // Old-generation hit: promote under the write lock (re-check, the
        // entry may have been evicted between the locks).
        let mut s = shard.write();
        let f = s.old.remove(snps)?;
        Self::insert_into(&mut s, self.per_shard, snps.to_vec(), f.clone());
        Some(f)
    }

    /// Memoize a SNP set's fitness. Returns how many resident entries the
    /// insert evicted (an entire old generation is dropped when the young
    /// generation fills its budget; 0 otherwise).
    pub fn insert(&self, snps: Vec<SnpId>, fitness: V) -> u64 {
        let mut s = self.shard(&snps).write();
        Self::insert_into(&mut s, self.per_shard, snps, fitness)
    }

    fn insert_into(s: &mut Shard<V>, per_shard: usize, snps: Vec<SnpId>, fitness: V) -> u64 {
        let mut evicted = 0u64;
        if s.young.len() >= per_shard {
            evicted = s.old.len() as u64;
            s.old = std::mem::take(&mut s.young);
        }
        s.old.remove(&snps);
        s.young.insert(snps, fitness);
        evicted
    }

    /// Entries currently resident (both generations).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.read();
                s.young.len() + s.old.len()
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.write();
            s.young.clear();
            s.old.clear();
        }
    }

    /// Export the exact generational contents, one `(young, old)` pair
    /// per shard. Checkpoints capture this verbatim: restoring young/old
    /// membership (not just the entry set) is what makes the resumed
    /// run's eviction and promotion trajectory — and therefore its
    /// per-generation hit counts — identical to the uninterrupted run's.
    pub(crate) fn export_generations(&self) -> Vec<ShardGenerations<V>> {
        self.shards
            .iter()
            .map(|shard| {
                let s = shard.read();
                (
                    s.young
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                    s.old.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
                )
            })
            .collect()
    }

    /// Load one shard's generations verbatim (inverse of
    /// [`ShardedCache::export_generations`]; `idx` must be in range).
    pub(crate) fn load_shard(
        &self,
        idx: usize,
        young: Vec<(Vec<SnpId>, V)>,
        old: Vec<(Vec<SnpId>, V)>,
    ) {
        let mut s = self.shards[idx].write();
        s.young = young.into_iter().collect();
        s.old = old.into_iter().collect();
    }
}

/// Per-window scheduler observability counters.
///
/// The engine embeds one window per generation in
/// [`crate::engine::GenerationStats`]; [`EvalService::stats`] accumulates
/// the same counters over the service's lifetime.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SchedStats {
    /// Batches submitted (one per evaluation phase).
    pub batches: u64,
    /// Unevaluated individuals received across those batches.
    pub requested: u64,
    /// Candidates dropped by the feasibility filter (before batching).
    pub infeasible: u64,
    /// Duplicate requests folded by intra-batch coalescing.
    pub coalesced: u64,
    /// Unique requests served from the cache.
    pub cache_hits: u64,
    /// Evaluations dispatched to the backend (the paper's true cost).
    pub true_evals: u64,
    /// Total wall-clock nanoseconds spent inside backend dispatch.
    pub dispatch_ns: u64,
    /// Peak jobs outstanding at a dispatch (batch size + residual backend
    /// queue depth).
    pub max_queue_depth: u64,
    /// Requests re-sent by the backend after per-request failures
    /// (fault recovery; `serde(default)` keeps old checkpoints loadable).
    #[serde(default)]
    pub retries: u64,
    /// Remote workers retired after exhausting their retries.
    #[serde(default)]
    pub retirements: u64,
    /// Retired workers that reconnected and rejoined the pool.
    #[serde(default)]
    pub rejoins: u64,
    /// Jobs requeued after a worker failure (never lost).
    #[serde(default)]
    pub requeued: u64,
    /// Batches whose residue was completed by the fallback backend after
    /// the primary backend failed.
    #[serde(default)]
    pub fallback_batches: u64,
    /// Scheduled evaluations the fitness store could *not* serve (they
    /// went to the backend). Only counted when a store is attached, so
    /// `cache_hits + cache_misses == scheduled()` exactly then.
    #[serde(default)]
    pub cache_misses: u64,
    /// Hot-tier entries evicted by the store's two-generation scheme.
    #[serde(default)]
    pub cache_evictions: u64,
    /// Freshly computed results appended to the store's disk tier.
    #[serde(default)]
    pub cache_persists: u64,
}

impl SchedStats {
    /// Unique scheduled evaluations (post-coalesce, pre-cache) — the
    /// engine's `total_evaluations` currency.
    pub fn scheduled(&self) -> u64 {
        self.requested - self.coalesced
    }

    /// Fraction of requests folded as intra-batch duplicates.
    pub fn dedup_ratio(&self) -> f64 {
        if self.requested == 0 {
            0.0
        } else {
            self.coalesced as f64 / self.requested as f64
        }
    }

    /// Fraction of scheduled evaluations served by the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let scheduled = self.scheduled();
        if scheduled == 0 {
            0.0
        } else {
            self.cache_hits as f64 / scheduled as f64
        }
    }

    /// Mean backend dispatch latency per batch, in milliseconds.
    pub fn mean_dispatch_ms(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.dispatch_ns as f64 / 1e6 / self.batches as f64
        }
    }

    /// Total fault-recovery events (retries, retirements, rejoins,
    /// requeues, fallback activations) absorbed by the evaluation layer.
    pub fn fault_events(&self) -> u64 {
        self.retries + self.retirements + self.rejoins + self.requeued + self.fallback_batches
    }

    /// Fold another window into this one.
    pub fn merge(&mut self, other: &SchedStats) {
        self.batches += other.batches;
        self.requested += other.requested;
        self.infeasible += other.infeasible;
        self.coalesced += other.coalesced;
        self.cache_hits += other.cache_hits;
        self.true_evals += other.true_evals;
        self.dispatch_ns += other.dispatch_ns;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.retries += other.retries;
        self.retirements += other.retirements;
        self.rejoins += other.rejoins;
        self.requeued += other.requeued;
        self.fallback_batches += other.fallback_batches;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_persists += other.cache_persists;
    }
}

/// Pre-registered metric handles so the submit path never touches the
/// registry lock (handles are plain `Arc`-backed atomics).
struct SchedMetrics {
    requested: Counter,
    coalesced: Counter,
    cache_hits: Counter,
    true_evals: Counter,
    fault_events: Counter,
    dispatch_ms: Histogram,
    store_hits: Counter,
    store_misses: Counter,
    store_evictions: Counter,
    store_persists: Counter,
}

impl SchedMetrics {
    fn register(observer: &Observer) -> Option<Self> {
        let reg = observer.registry()?;
        Some(SchedMetrics {
            requested: reg.counter(
                "ld_sched_requested_total",
                "Unevaluated individuals received by the scheduler.",
            ),
            coalesced: reg.counter(
                "ld_sched_coalesced_total",
                "Duplicate requests folded by intra-batch coalescing.",
            ),
            cache_hits: reg.counter(
                "ld_sched_cache_hits_total",
                "Unique requests served by the fitness cache.",
            ),
            true_evals: reg.counter(
                "ld_sched_true_evals_total",
                "Evaluations that actually reached a backend.",
            ),
            fault_events: reg.counter(
                "ld_sched_fault_events_total",
                "Fault-recovery events absorbed by the evaluation layer.",
            ),
            dispatch_ms: reg.histogram(
                "ld_sched_dispatch_ms",
                "Wall-clock time of one backend dispatch, milliseconds.",
                LATENCY_MS_BUCKETS,
            ),
            store_hits: reg.counter(
                "ld_cache_hits_total",
                "Scheduled evaluations served by the tiered fitness store.",
            ),
            store_misses: reg.counter(
                "ld_cache_misses_total",
                "Scheduled evaluations the fitness store could not serve.",
            ),
            store_evictions: reg.counter(
                "ld_cache_evictions_total",
                "Hot-tier entries evicted by the store's generation scheme.",
            ),
            store_persists: reg.counter(
                "ld_cache_persists_total",
                "Fresh results appended to the fitness store's disk tier.",
            ),
        })
    }
}

/// The service's view of a [`FitnessStore`]: a shared (or private)
/// store plus the dataset identity this service evaluates against.
struct ServiceStore {
    store: Arc<FitnessStore>,
    fp: DatasetFingerprint,
}

/// The unified batch-evaluation scheduler (see the module docs for the
/// stage pipeline).
pub struct EvalService<B: EvalBackend> {
    backend: B,
    fallback: Option<Arc<dyn EvalBackend>>,
    store: Option<ServiceStore>,
    feasibility: Option<FeasibilityFilter>,
    totals: SchedStats,
    window: SchedStats,
    observer: Observer,
    metrics: Option<SchedMetrics>,
}

impl<B: EvalBackend> EvalService<B> {
    /// A service dispatching to `backend`, with no cache, no fallback and
    /// no feasibility filter.
    pub fn new(backend: B) -> Self {
        EvalService {
            backend,
            fallback: None,
            store: None,
            feasibility: None,
            totals: SchedStats::default(),
            window: SchedStats::default(),
            observer: Observer::disabled(),
            metrics: None,
        }
    }

    /// Attach an observer: batch lifecycle events go to its sink and the
    /// scheduler counters to its registry. The default is the disabled
    /// observer, whose cost on the submit path is a handful of `Option`
    /// branches.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.set_observer(observer);
        self
    }

    /// Attach an observer in place (see [`EvalService::with_observer`]).
    pub fn set_observer(&mut self, observer: Observer) {
        self.metrics = SchedMetrics::register(&observer);
        self.observer = observer;
    }

    /// The attached observer (disabled unless one was installed).
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Install a fallback backend used to finish a batch when the primary
    /// backend fails (e.g. a local evaluator behind a TCP slave pool).
    /// Activations are counted in [`SchedStats::fallback_batches`].
    pub fn with_fallback(mut self, fallback: Arc<dyn EvalBackend>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Enable a private hot-tier-only fitness store (`capacity` SNP
    /// sets; 0 = unbounded). Store hits skip the backend but still count
    /// as scheduled evaluations (see the module docs).
    pub fn with_cache(self, capacity: usize) -> Self {
        self.with_store(
            Arc::new(FitnessStore::in_memory(capacity)),
            DatasetFingerprint::LOCAL,
        )
    }

    /// Attach a (possibly shared, possibly disk-backed) tiered
    /// [`FitnessStore`]; this service's probes and inserts are keyed
    /// under `fp`. Replaces any store installed by
    /// [`EvalService::with_cache`].
    pub fn with_store(mut self, store: Arc<FitnessStore>, fp: DatasetFingerprint) -> Self {
        self.store = Some(ServiceStore { store, fp });
        self
    }

    /// The dataset fingerprint this service's store entries are keyed
    /// under (`None` without a store).
    pub fn store_fingerprint(&self) -> Option<DatasetFingerprint> {
        self.store.as_ref().map(|s| s.fp)
    }

    /// Install (or clear) the feasibility filter.
    pub fn with_feasibility(mut self, filter: Option<FeasibilityFilter>) -> Self {
        self.feasibility = filter;
        self
    }

    /// The dispatch backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Panel width served by the backend.
    pub fn n_snps(&self) -> usize {
        self.backend.n_snps()
    }

    /// Whether a SNP set passes the feasibility filter (vacuously true
    /// without one).
    pub fn is_feasible(&self, snps: &[SnpId]) -> bool {
        self.feasibility.as_ref().is_none_or(|f| f(snps))
    }

    /// Drop infeasible candidates from `batch` (counted in the stats).
    pub fn retain_feasible(&mut self, batch: &mut Vec<Haplotype>) {
        let Some(filter) = self.feasibility.as_ref() else {
            return;
        };
        let before = batch.len();
        batch.retain(|h| filter(h.snps()));
        let dropped = (before - batch.len()) as u64;
        self.window.infeasible += dropped;
        self.totals.infeasible += dropped;
    }

    /// Run one batch through coalesce → cache → dispatch, writing fitness
    /// in place. Already-evaluated members are left untouched. Returns the
    /// number of *scheduled* evaluations (unique unevaluated SNP sets).
    ///
    /// If the primary backend fails mid-batch, the unevaluated residue is
    /// re-dispatched to the [`EvalService::with_fallback`] backend; only
    /// when there is no fallback (or the fallback fails too) does the
    /// error surface. Either way the counters for this batch — including
    /// the fault events the backend absorbed — are recorded.
    pub fn submit(&mut self, batch: &mut [Haplotype]) -> Result<u64, EvalBackendError> {
        self.submit_phase(batch, "batch")
    }

    /// [`EvalService::submit`] with an explicit phase label (`"init"`,
    /// `"crossover"`, ...) carried on the emitted batch events.
    pub fn submit_phase(
        &mut self,
        batch: &mut [Haplotype],
        phase: ld_observe::Phase,
    ) -> Result<u64, EvalBackendError> {
        let pending: Vec<usize> = batch
            .iter()
            .enumerate()
            .filter(|(_, h)| !h.is_evaluated())
            .map(|(i, _)| i)
            .collect();
        self.window.batches += 1;
        self.totals.batches += 1;
        self.window.requested += pending.len() as u64;
        self.totals.requested += pending.len() as u64;
        if pending.is_empty() {
            return Ok(0);
        }

        // Open the observation span for this batch before any stage runs,
        // so events raised inside dispatch (retries, retirements) inherit
        // the batch id and the timed `batch` span covers coalesce → apply.
        self.observer.begin_batch();
        let batch_span = self.observer.span(span_names::BATCH);

        // Coalesce: group duplicate SNP sets, preserving first-seen order.
        let coalesce_span = self.observer.span(span_names::COALESCE);
        let mut groups: Vec<(Vec<SnpId>, Vec<usize>)> = Vec::new();
        let mut by_key: HashMap<Vec<SnpId>, usize> = HashMap::new();
        for &i in &pending {
            let key = batch[i].snps();
            if let Some(&g) = by_key.get(key) {
                groups[g].1.push(i);
            } else {
                by_key.insert(key.to_vec(), groups.len());
                groups.push((key.to_vec(), vec![i]));
            }
        }
        let scheduled = groups.len() as u64;
        let coalesced = pending.len() as u64 - scheduled;
        drop(coalesce_span);

        // A torn-tail recovery performed when the store's disk tier was
        // opened surfaces here, on the first batch, as a typed event in
        // the run's stream (the AtomicBool fast path keeps this free on
        // every later batch).
        if let Some(st) = &self.store {
            if let Some(r) = st.store.take_recovery() {
                self.observer.emit_with(|| Event::StoreRecovered {
                    kept_records: r.kept_records,
                    dropped_bytes: r.dropped_bytes,
                });
            }
        }

        // Store probe (hot tier, then disk tier).
        let cache_span = self.observer.span(span_names::CACHE);
        let mut cache_hits = 0u64;
        let mut misses: Vec<usize> = Vec::with_capacity(groups.len());
        for (g, (key, members)) in groups.iter().enumerate() {
            match self
                .store
                .as_ref()
                .and_then(|st| st.store.probe(st.fp, key))
            {
                Some(hit) => {
                    cache_hits += 1;
                    for &i in members {
                        batch[i].set_fitness(hit.fitness);
                    }
                }
                None => misses.push(g),
            }
        }
        let cache_misses = if self.store.is_some() {
            misses.len() as u64
        } else {
            0
        };
        drop(cache_span);

        self.observer.emit_with(|| Event::BatchDispatched {
            phase: phase.to_string(),
            requested: pending.len() as u64,
            coalesced,
            cache_hits,
            dispatched: misses.len() as u64,
        });

        // Dispatch residual misses as one backend batch. On primary
        // failure the fallback backend finishes the unevaluated residue.
        let mut true_evals = 0u64;
        let mut dispatch_ns = 0u64;
        let mut depth = 0u64;
        let mut fallback_batches = 0u64;
        let mut cache_evictions = 0u64;
        let mut cache_persists = 0u64;
        let mut dispatch_err: Option<EvalBackendError> = None;
        if !misses.is_empty() {
            let mut jobs: Vec<Haplotype> = misses
                .iter()
                .map(|&g| Haplotype::from_sorted(groups[g].0.clone()))
                .collect();
            depth = (jobs.len() + self.backend.queue_depth()) as u64;
            // Publish the dispatch span so backend worker threads (whose
            // thread-local span stacks are empty) can parent their
            // per-request spans under it.
            let dispatch_span = self.observer.span(span_names::DISPATCH);
            self.observer.begin_dispatch_span(dispatch_span.id());
            let started = Instant::now();
            if let Err(primary_err) = self.backend.dispatch(&mut jobs) {
                match &self.fallback {
                    Some(fb) => {
                        fallback_batches = 1;
                        self.observer.emit_with(|| Event::FallbackActivated {
                            residue: jobs.iter().filter(|h| !h.is_evaluated()).count() as u64,
                        });
                        // The failed backend left finished jobs evaluated;
                        // only the residue goes to the fallback.
                        let residue: Vec<usize> = jobs
                            .iter()
                            .enumerate()
                            .filter(|(_, h)| !h.is_evaluated())
                            .map(|(i, _)| i)
                            .collect();
                        let mut residue_jobs: Vec<Haplotype> = residue
                            .iter()
                            .map(|&i| Haplotype::from_sorted(jobs[i].snps().to_vec()))
                            .collect();
                        match fb.dispatch(&mut residue_jobs) {
                            Ok(()) => {
                                for (&i, job) in residue.iter().zip(&residue_jobs) {
                                    jobs[i].set_fitness(job.fitness());
                                }
                            }
                            Err(fallback_err) => dispatch_err = Some(fallback_err),
                        }
                    }
                    None => dispatch_err = Some(primary_err),
                }
            }
            dispatch_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.observer.end_dispatch_span();
            drop(dispatch_span);
            true_evals = jobs.iter().filter(|h| h.is_evaluated()).count() as u64;
            if dispatch_err.is_none() {
                let apply_span = self.observer.span(span_names::APPLY);
                for (&g, job) in misses.iter().zip(&jobs) {
                    let f = job.fitness();
                    if let Some(st) = &self.store {
                        let outcome = st.store.insert(st.fp, &groups[g].0, f, 0);
                        cache_evictions += outcome.evicted;
                        cache_persists += u64::from(outcome.persisted);
                    }
                    for &i in &groups[g].1 {
                        batch[i].set_fitness(f);
                    }
                }
                drop(apply_span);
            }
        }

        // Record this batch — fault events included — even on the error
        // path, so a failed generation is still visible in telemetry.
        let faults = self.backend.take_fault_events();
        for s in [&mut self.window, &mut self.totals] {
            s.coalesced += coalesced;
            s.cache_hits += cache_hits;
            s.true_evals += true_evals;
            s.dispatch_ns += dispatch_ns;
            s.max_queue_depth = s.max_queue_depth.max(depth);
            s.retries += faults.retries;
            s.retirements += faults.retirements;
            s.rejoins += faults.rejoins;
            s.requeued += faults.requeued;
            s.fallback_batches += fallback_batches;
            s.cache_misses += cache_misses;
            s.cache_evictions += cache_evictions;
            s.cache_persists += cache_persists;
        }
        if let Some(m) = &self.metrics {
            m.requested.add(pending.len() as u64);
            m.coalesced.add(coalesced);
            m.cache_hits.add(cache_hits);
            m.true_evals.add(true_evals);
            m.store_hits.add(cache_hits);
            m.store_misses.add(cache_misses);
            m.store_evictions.add(cache_evictions);
            m.store_persists.add(cache_persists);
            m.fault_events.add(
                faults.retries
                    + faults.retirements
                    + faults.rejoins
                    + faults.requeued
                    + fallback_batches,
            );
            if !misses.is_empty() {
                m.dispatch_ms.observe(dispatch_ns as f64 / 1e6);
            }
        }
        self.observer.emit_with(|| Event::BatchCompleted {
            phase: phase.to_string(),
            true_evals,
            dispatch_ms: dispatch_ns as f64 / 1e6,
            failed: dispatch_err.is_some(),
        });
        // Close the batch span while its batch id is still current, so
        // the SpanClosed event carries the id it describes.
        drop(batch_span);
        self.observer.end_batch();
        match dispatch_err {
            Some(err) => {
                // The batch is about to surface an unrecoverable backend
                // failure (no fallback, or the fallback failed too): flag
                // it as fatal so an attached flight recorder dumps its
                // black box before the run unwinds.
                self.observer.emit_with(|| Event::EvalFatal {
                    detail: err.to_string(),
                });
                Err(err)
            }
            None => Ok(scheduled),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &SchedStats {
        &self.totals
    }

    /// Drain and return the counters accumulated since the last call (the
    /// engine calls this once per generation).
    pub fn take_window(&mut self) -> SchedStats {
        std::mem::take(&mut self.window)
    }

    /// Entries resident in the store's hot tier for this service's
    /// fingerprint (0 without a store).
    pub fn cache_len(&self) -> usize {
        self.store.as_ref().map_or(0, |st| st.store.len(st.fp))
    }

    /// The attached fitness store, if any (shared handles stay shared).
    pub fn store(&self) -> Option<&Arc<FitnessStore>> {
        self.store.as_ref().map(|st| &st.store)
    }

    /// Exact hot-tier snapshot for this service's fingerprint, for
    /// checkpoints (`None` without a store).
    pub fn cache_snapshot(&self) -> Option<CacheSnapshot> {
        self.store.as_ref().map(|st| st.store.snapshot(st.fp))
    }

    /// Rebuild the hot tier verbatim from a checkpointed snapshot. A
    /// no-op without a store (the restored run was configured cacheless,
    /// so its trajectory never consults one).
    pub fn restore_cache_snapshot(&mut self, snap: &CacheSnapshot) {
        if let Some(st) = &self.store {
            st.store.restore_snapshot(st.fp, snap);
        }
    }

    /// Overwrite the lifetime counters from a checkpoint, so fault and
    /// store accounting survives resume instead of restarting from zero.
    pub fn restore_totals(&mut self, totals: SchedStats) {
        self.totals = totals;
    }

    /// Fsync the store's disk tier, if any — called when a checkpoint is
    /// written so the persistent memo is at least as fresh as the
    /// checkpoint that references its warmth.
    pub fn flush_store(&self) {
        if let Some(st) = &self.store {
            let _ = st.store.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{CountingEvaluator, FnEvaluator};

    fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        FnEvaluator::new(30, |s: &[SnpId]| s.iter().sum::<usize>() as f64)
    }

    fn dup_batch(n: usize) -> Vec<Haplotype> {
        (0..n).map(|_| Haplotype::new(vec![3, 7])).collect()
    }

    #[test]
    fn duplicates_coalesce_to_one_true_evaluation() {
        // The acceptance property: a batch of N duplicates of one SNP set
        // performs exactly 1 true evaluation.
        let counter = CountingEvaluator::new(toy());
        let mut svc = EvalService::new(EvaluatorBackend::new(&counter));
        let mut batch = dup_batch(8);
        let scheduled = svc.submit(&mut batch).unwrap();
        assert_eq!(scheduled, 1);
        assert_eq!(counter.count(), 1);
        assert_eq!(svc.stats().requested, 8);
        assert_eq!(svc.stats().coalesced, 7);
        assert_eq!(svc.stats().true_evals, 1);
        for h in &batch {
            assert_eq!(h.fitness(), 10.0);
        }
    }

    #[test]
    fn evaluated_members_are_skipped() {
        let counter = CountingEvaluator::new(toy());
        let mut svc = EvalService::new(EvaluatorBackend::new(&counter));
        let mut pre = Haplotype::new(vec![1, 2]);
        pre.set_fitness(99.0);
        let mut batch = vec![pre, Haplotype::new(vec![5, 6])];
        assert_eq!(svc.submit(&mut batch).unwrap(), 1);
        assert_eq!(batch[0].fitness(), 99.0, "pre-scored member untouched");
        assert_eq!(batch[1].fitness(), 11.0);
        assert_eq!(counter.count(), 1);
    }

    #[test]
    fn cache_serves_repeat_batches_without_backend_traffic() {
        let counter = CountingEvaluator::new(toy());
        let mut svc = EvalService::new(EvaluatorBackend::new(&counter)).with_cache(1024);
        let mut batch = dup_batch(4);
        assert_eq!(svc.submit(&mut batch).unwrap(), 1);
        assert_eq!(counter.count(), 1);
        // A fresh batch with the same set: scheduled but served from cache.
        let mut batch = dup_batch(4);
        assert_eq!(
            svc.submit(&mut batch).unwrap(),
            1,
            "cache hits still count as scheduled"
        );
        assert_eq!(counter.count(), 1, "backend untouched");
        assert_eq!(svc.stats().cache_hits, 1);
        assert_eq!(svc.stats().true_evals, 1);
        assert_eq!(batch[0].fitness(), 10.0);
    }

    #[test]
    fn feasibility_stage_drops_and_counts() {
        let counter = CountingEvaluator::new(toy());
        let filter: FeasibilityFilter = Arc::new(|s: &[SnpId]| !s.contains(&29));
        let mut svc =
            EvalService::new(EvaluatorBackend::new(&counter)).with_feasibility(Some(filter));
        assert!(svc.is_feasible(&[1, 2]));
        assert!(!svc.is_feasible(&[1, 29]));
        let mut batch = vec![
            Haplotype::new(vec![1, 2]),
            Haplotype::new(vec![1, 29]),
            Haplotype::new(vec![2, 29]),
        ];
        svc.retain_feasible(&mut batch);
        assert_eq!(batch.len(), 1);
        assert_eq!(svc.stats().infeasible, 2);
        svc.submit(&mut batch).unwrap();
        assert_eq!(counter.count(), 1);
    }

    #[test]
    fn windows_drain_while_totals_accumulate() {
        let counter = CountingEvaluator::new(toy());
        let mut svc = EvalService::new(EvaluatorBackend::new(&counter));
        svc.submit(&mut dup_batch(3)).unwrap();
        let w = svc.take_window();
        assert_eq!(w.requested, 3);
        assert_eq!(w.true_evals, 1);
        svc.submit(&mut [Haplotype::new(vec![4, 9])]).unwrap();
        let w = svc.take_window();
        assert_eq!(w.requested, 1, "window drained between generations");
        assert_eq!(svc.stats().requested, 4, "totals keep accumulating");
        assert_eq!(svc.stats().batches, 2);
    }

    #[test]
    fn bounded_cache_evicts_cheaply() {
        let cache = ShardedCache::with_capacity(64);
        assert_eq!(cache.capacity(), 64);
        for i in 0..10_000usize {
            cache.insert(vec![i, i + 1], i as f64);
        }
        // Two generations per shard: resident size stays within ~2×
        // capacity plus per-shard rounding, far below the insert count.
        let cap = cache.capacity() + cache.shard_count();
        assert!(
            cache.len() <= 2 * cap,
            "cache grew unbounded: {} entries",
            cache.len()
        );
        // Recently inserted keys are still resident.
        assert_eq!(cache.probe(&[9999, 10000]), Some(9999.0));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn unbounded_cache_keeps_everything() {
        let cache = ShardedCache::unbounded();
        for i in 0..1000usize {
            cache.insert(vec![i], i as f64);
        }
        assert_eq!(cache.len(), 1000);
        assert_eq!(cache.probe(&[0]), Some(0.0));
    }

    #[test]
    fn old_generation_hits_are_promoted() {
        // Force a tiny cache so one insert rotates the generations.
        let cache = ShardedCache::with_capacity(1);
        cache.insert(vec![1, 2], 3.0);
        // Probing must still find the entry regardless of which
        // generation it sits in, and must not duplicate it.
        for _ in 0..3 {
            assert_eq!(cache.probe(&[1, 2]), Some(3.0));
        }
        assert!(!cache.is_empty());
    }

    #[test]
    fn stats_ratios_are_well_defined() {
        let s = SchedStats::default();
        assert_eq!(s.dedup_ratio(), 0.0);
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.mean_dispatch_ms(), 0.0);
        let s = SchedStats {
            batches: 2,
            requested: 10,
            coalesced: 5,
            cache_hits: 1,
            true_evals: 4,
            dispatch_ns: 4_000_000,
            ..SchedStats::default()
        };
        assert_eq!(s.scheduled(), 5);
        assert!((s.dedup_ratio() - 0.5).abs() < 1e-12);
        assert!((s.cache_hit_rate() - 0.2).abs() < 1e-12);
        assert!((s.mean_dispatch_ms() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_folds_counters() {
        let mut a = SchedStats {
            batches: 1,
            requested: 3,
            max_queue_depth: 2,
            ..SchedStats::default()
        };
        let b = SchedStats {
            batches: 2,
            requested: 4,
            true_evals: 4,
            max_queue_depth: 7,
            ..SchedStats::default()
        };
        a.merge(&b);
        assert_eq!(a.batches, 3);
        assert_eq!(a.requested, 7);
        assert_eq!(a.true_evals, 4);
        assert_eq!(a.max_queue_depth, 7);
    }

    #[test]
    fn backend_adapter_reports_panel_and_name() {
        let inner = toy();
        let backend = EvaluatorBackend::new(&inner);
        assert_eq!(backend.n_snps(), 30);
        assert_eq!(backend.backend_name(), "evaluator");
        assert_eq!(backend.queue_depth(), 0);
        let mut jobs = vec![Haplotype::new(vec![2, 3])];
        backend.dispatch(&mut jobs).unwrap();
        assert_eq!(jobs[0].fitness(), 5.0);
    }

    /// A backend that evaluates the first `complete_before_failing` jobs of
    /// each batch and then fails, reporting synthetic fault events.
    struct FlakyBackend {
        complete_before_failing: usize,
    }

    impl EvalBackend for FlakyBackend {
        fn n_snps(&self) -> usize {
            30
        }

        fn dispatch(&self, batch: &mut [Haplotype]) -> Result<(), EvalBackendError> {
            for h in batch.iter_mut().take(self.complete_before_failing) {
                let f = h.snps().iter().sum::<usize>() as f64;
                h.set_fitness(f);
            }
            let outstanding = batch.len().saturating_sub(self.complete_before_failing);
            Err(EvalBackendError::AllWorkersFailed {
                outstanding,
                total: batch.len(),
            })
        }

        fn take_fault_events(&self) -> FaultEvents {
            FaultEvents {
                retries: 2,
                retirements: 1,
                rejoins: 0,
                requeued: 3,
            }
        }

        fn backend_name(&self) -> &'static str {
            "flaky"
        }
    }

    #[test]
    fn backend_failure_without_fallback_surfaces_typed_error() {
        let sink = Arc::new(ld_observe::RingSink::new(64));
        let observer = Observer::new(
            "sched-fatal",
            Arc::clone(&sink) as Arc<dyn ld_observe::Sink>,
            ld_observe::Registry::new(),
        );
        let mut svc = EvalService::new(FlakyBackend {
            complete_before_failing: 0,
        })
        .with_observer(observer);
        let mut batch = vec![Haplotype::new(vec![1, 2]), Haplotype::new(vec![3, 4])];
        let err = svc.submit(&mut batch).unwrap_err();
        assert_eq!(
            err,
            EvalBackendError::AllWorkersFailed {
                outstanding: 2,
                total: 2
            }
        );
        // The batch is recorded and the drained fault events land in stats.
        assert_eq!(svc.stats().batches, 1);
        assert_eq!(svc.stats().retries, 2);
        assert_eq!(svc.stats().retirements, 1);
        assert_eq!(svc.stats().requeued, 3);
        assert_eq!(svc.stats().fallback_batches, 0);
        assert!(svc.stats().fault_events() > 0);
        // The unrecoverable failure was flagged as fatal in the event
        // stream (the flight recorder's dump trigger).
        let fatal = sink.take().into_iter().find_map(|env| match env.event {
            Event::EvalFatal { detail } => Some(detail),
            _ => None,
        });
        assert!(
            fatal.as_deref().is_some_and(|d| d.contains("worker")),
            "missing EvalFatal: {fatal:?}"
        );
    }

    #[test]
    fn fallback_backend_finishes_the_residue() {
        let inner = toy();
        let fallback: Arc<dyn EvalBackend> = Arc::new(OwnedEvaluatorBackend(inner));
        let mut svc = EvalService::new(FlakyBackend {
            complete_before_failing: 1,
        })
        .with_fallback(fallback);
        let mut batch = vec![
            Haplotype::new(vec![1, 2]),
            Haplotype::new(vec![3, 4]),
            Haplotype::new(vec![5, 6]),
        ];
        let scheduled = svc.submit(&mut batch).unwrap();
        assert_eq!(scheduled, 3);
        // Jobs the primary finished keep its results; the residue comes
        // from the fallback — either way every member ends up evaluated.
        assert_eq!(batch[0].fitness(), 3.0);
        assert_eq!(batch[1].fitness(), 7.0);
        assert_eq!(batch[2].fitness(), 11.0);
        assert_eq!(svc.stats().fallback_batches, 1);
        assert_eq!(svc.stats().true_evals, 3);
    }

    /// Owned adapter so a fallback can hold its evaluator (the borrowed
    /// [`EvaluatorBackend`] cannot live inside an `Arc<dyn _>` here).
    struct OwnedEvaluatorBackend<E: Evaluator>(E);

    impl<E: Evaluator> EvalBackend for OwnedEvaluatorBackend<E> {
        fn n_snps(&self) -> usize {
            self.0.n_snps()
        }

        fn dispatch(&self, batch: &mut [Haplotype]) -> Result<(), EvalBackendError> {
            self.0.try_evaluate_batch(batch)
        }

        fn backend_name(&self) -> &'static str {
            "owned-evaluator"
        }
    }

    // --- WeightedFairQueue ---------------------------------------------

    /// Deterministic splitmix64 for property-style weight sampling.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn fair_queue_service_is_weight_proportional_under_backlog() {
        let mut q = WeightedFairQueue::new();
        q.register(1, 1);
        q.register(2, 8);
        for i in 0..200u32 {
            q.push(1, i);
            q.push(2, i);
        }
        // Over any whole number of laps, claims split exactly 1:8.
        let mut counts = [0usize; 2];
        for _ in 0..9 * 20 {
            let (run, _) = q.claim().expect("backlogged");
            counts[run as usize - 1] += 1;
        }
        assert_eq!(counts, [20, 160]);
    }

    #[test]
    fn fair_queue_starvation_bound_holds_for_random_weights() {
        // Property: however the weights are drawn, a backlogged run is
        // never skipped for more than Σ(other weights) consecutive claims.
        let mut rng = 0x5EED_u64;
        for trial in 0..50 {
            let n_runs = 2 + splitmix64(&mut rng) % 4; // 2..=5
            let mut q = WeightedFairQueue::new();
            let mut weights = HashMap::new();
            for id in 0..n_runs {
                let w = 1 + (splitmix64(&mut rng) % 8) as u32; // 1..=8
                q.register(id, w);
                weights.insert(id, w);
                for i in 0..500u32 {
                    q.push(id, i);
                }
            }
            let total_weight: u32 = weights.values().sum();
            let mut last_seen: HashMap<u64, usize> = HashMap::new();
            for step in 0..(total_weight as usize * 10) {
                let (run, _) = q.claim().expect("backlogged");
                if let Some(prev) = last_seen.insert(run, step) {
                    let bound = (total_weight - weights[&run]) as usize;
                    assert!(
                        step - prev - 1 <= bound,
                        "trial {trial}: run {run} (weight {}) starved for {} claims, \
                         bound is {bound}",
                        weights[&run],
                        step - prev - 1,
                    );
                }
            }
        }
    }

    #[test]
    fn fair_queue_claims_stay_fifo_within_each_run() {
        let mut rng = 0xFEED_u64;
        let mut q = WeightedFairQueue::new();
        for id in 0..3u64 {
            q.register(id, 1 + (splitmix64(&mut rng) % 5) as u32);
            for seq in 0..100u32 {
                q.push(id, seq);
            }
        }
        let mut next_expected = [0u32; 3];
        while let Some((run, seq)) = q.claim() {
            assert_eq!(
                seq, next_expected[run as usize],
                "run {run} claimed out of push order"
            );
            next_expected[run as usize] += 1;
        }
        assert_eq!(next_expected, [100, 100, 100]);
    }

    #[test]
    fn fair_queue_push_front_requeues_at_the_head() {
        let mut q = WeightedFairQueue::new();
        q.register(1, 2);
        q.push(1, "a");
        q.push(1, "b");
        let (_, first) = q.claim().unwrap();
        assert_eq!(first, "a");
        // Worker failed: the job goes back to the head of its run's line.
        q.push_front(1, "a");
        assert_eq!(q.claim().unwrap().1, "a");
        assert_eq!(q.claim().unwrap().1, "b");
        assert!(q.claim().is_none());
    }

    #[test]
    fn fair_queue_idle_run_forfeits_deficit_and_unknown_run_is_rejected() {
        let mut q = WeightedFairQueue::new();
        q.register(1, 8);
        q.register(2, 1);
        // Run 1 is idle: it must not bank its weight-8 deficit while run 2
        // drains, then burst when work arrives.
        for i in 0..4u32 {
            q.push(2, i);
        }
        assert_eq!(q.claim().unwrap().0, 2);
        q.push(1, 99);
        // One claim for run 1 (its turn in the ring), then back to fair
        // alternation — not 8 consecutive run-1 claims.
        let order: Vec<u64> = std::iter::from_fn(|| q.claim().map(|(r, _)| r)).collect();
        assert_eq!(order.iter().filter(|&&r| r == 1).count(), 1);
        // Items for unregistered runs are refused, not silently enqueued.
        assert!(!q.push(7, 0));
        assert!(!q.push_front(7, 0));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn fair_queue_unregister_drops_items_and_keeps_ring_consistent() {
        let mut q = WeightedFairQueue::new();
        for id in 0..3u64 {
            q.register(id, 1);
            q.push(id, id);
        }
        // Advance the cursor past run 0, then remove an earlier run.
        let _ = q.claim();
        assert_eq!(q.unregister(0), 0); // already drained
        assert_eq!(q.run_count(), 2);
        assert_eq!(q.unregister(2), 1); // drops its one pending item
        assert_eq!(q.run_len(1), Some(1));
        assert_eq!(q.claim().unwrap().0, 1);
        assert!(q.claim().is_none());
        assert_eq!(q.unregister(99), 0);
    }

    #[test]
    fn fair_queue_purge_removes_matching_jobs_only() {
        let mut q = WeightedFairQueue::new();
        q.register(1, 1);
        q.register(2, 1);
        for i in 0..4u32 {
            q.push(1, i);
            q.push(2, i);
        }
        // Drop run 1's even jobs (e.g. members of a failed batch).
        let removed = q.purge(|run, item| run == 1 && item % 2 == 0);
        assert_eq!(removed, 2);
        assert_eq!(q.run_len(1), Some(2));
        assert_eq!(q.run_len(2), Some(4));
        let mut run1_order = Vec::new();
        while let Some((run, item)) = q.claim() {
            if run == 1 {
                run1_order.push(item);
            }
        }
        assert_eq!(run1_order, vec![1, 3]);
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ld-sched-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Read one counter family out of a registry snapshot.
    fn counter_value(reg: &ld_observe::Registry, name: &str) -> u64 {
        let snap = reg.snapshot();
        let fam = snap
            .families
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("metric {name} not registered"));
        fam.series[0].value as u64
    }

    #[test]
    fn store_counters_reconcile_with_metrics_registry() {
        // The acceptance property behind `/metrics`: the `ld_cache_*`
        // counter family must reconcile exactly with the `SchedStats`
        // totals the history TSV and `SchedSummary` are built from.
        let dir = tmp_dir("metrics");
        let store = Arc::new(FitnessStore::open(&dir, 4).unwrap());
        let sink: Arc<dyn ld_observe::Sink> = Arc::new(ld_observe::RingSink::new(16));
        let observer = Observer::new("sched-metrics", sink, ld_observe::Registry::new());
        let counter = CountingEvaluator::new(toy());
        let mut svc = EvalService::new(EvaluatorBackend::new(&counter))
            .with_store(store, DatasetFingerprint::from_raw(0xD))
            .with_observer(observer);

        // 160 distinct sets overflow the 4-entry hot tier no matter the
        // machine's shard count (≤ 64 shards ⇒ some shard sees ≥ 3
        // inserts ⇒ a generation rotation drops a non-empty old
        // generation). The replay then hits — hot tier or disk tier.
        let mut first: Vec<Haplotype> = (0..160usize)
            .map(|i| Haplotype::new(vec![i, i + 1]))
            .collect();
        svc.submit(&mut first).unwrap();
        let mut replay: Vec<Haplotype> = (0..160usize)
            .map(|i| Haplotype::new(vec![i, i + 1]))
            .collect();
        svc.submit(&mut replay).unwrap();

        let s = svc.stats().clone();
        assert_eq!(s.cache_hits, 160, "replay fully served by the store");
        assert_eq!(s.cache_misses, 160, "first pass is all misses");
        assert_eq!(
            s.cache_hits + s.cache_misses,
            s.requested - s.coalesced,
            "every scheduled evaluation is a hit or a miss"
        );
        assert_eq!(s.true_evals, s.cache_misses, "exactly the misses dispatch");
        assert_eq!(
            s.cache_persists, s.true_evals,
            "every fresh result persisted"
        );
        assert!(s.cache_evictions > 0, "4-entry hot tier must rotate");

        let reg = svc.observer().registry().expect("observer has a registry");
        assert_eq!(counter_value(reg, "ld_cache_hits_total"), s.cache_hits);
        assert_eq!(counter_value(reg, "ld_cache_misses_total"), s.cache_misses);
        assert_eq!(
            counter_value(reg, "ld_cache_evictions_total"),
            s.cache_evictions
        );
        assert_eq!(
            counter_value(reg, "ld_cache_persists_total"),
            s.cache_persists
        );
        // And the families render in the Prometheus exposition `/metrics`
        // serves verbatim.
        let text = reg.prometheus();
        for name in [
            "ld_cache_hits_total",
            "ld_cache_misses_total",
            "ld_cache_evictions_total",
            "ld_cache_persists_total",
        ] {
            assert!(
                text.contains(name),
                "{name} missing from exposition:\n{text}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_disk_tier_recovery_reaches_the_event_stream() {
        // A kill mid-append leaves a torn tail. The next run over the same
        // cache directory must recover (drop only the damaged suffix),
        // surface a typed `StoreRecovered` event in its stream, and keep
        // serving the intact records — never panic.
        let dir = tmp_dir("torn");
        let fp = DatasetFingerprint::from_raw(0xF00D);
        {
            let store = FitnessStore::open(&dir, 64).unwrap();
            for i in 0..4usize {
                store.insert(fp, &[i, i + 1], 100.0 + i as f64, 0);
            }
            store.flush().unwrap();
        }
        let log = dir.join("fitness.log");
        let len = std::fs::metadata(&log).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&log).unwrap();
        file.set_len(len - 7).unwrap(); // mid-record, not a frame boundary
        drop(file);

        let store = Arc::new(FitnessStore::open(&dir, 64).unwrap());
        let sink = Arc::new(ld_observe::RingSink::new(16));
        let observer = Observer::new(
            "torn-tail",
            sink.clone() as Arc<dyn ld_observe::Sink>,
            ld_observe::Registry::new(),
        );
        let counter = CountingEvaluator::new(toy());
        let mut svc = EvalService::new(EvaluatorBackend::new(&counter))
            .with_store(store, fp)
            .with_observer(observer);

        let mut batch: Vec<Haplotype> = (0..4usize)
            .map(|i| Haplotype::new(vec![i, i + 1]))
            .collect();
        svc.submit(&mut batch).unwrap();
        // Survivors carry the seeded values (proof they came from disk);
        // only the torn record re-evaluates, through toy()'s sum.
        for (i, h) in batch.iter().take(3).enumerate() {
            assert_eq!(h.fitness(), 100.0 + i as f64);
        }
        assert_eq!(batch[3].fitness(), 7.0, "torn record re-evaluated");
        assert_eq!(svc.stats().cache_hits, 3);
        assert_eq!(svc.stats().true_evals, 1);

        let recovered: Vec<(u64, u64)> = sink
            .events()
            .iter()
            .filter_map(|e| match &e.event {
                Event::StoreRecovered {
                    kept_records,
                    dropped_bytes,
                } => Some((*kept_records, *dropped_bytes)),
                _ => None,
            })
            .collect();
        assert_eq!(recovered.len(), 1, "recovery surfaces exactly once");
        assert_eq!(recovered[0].0, 3, "only the damaged suffix dropped");
        assert!(recovered[0].1 > 0, "dropped byte count recorded");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
