//! Checkpoint / resume for long GA runs.
//!
//! The paper ran on a shared 2003 cluster where long jobs die; today's
//! equivalent is spot instances and preemptible batch queues. A
//! [`Checkpoint`] captures the *entire* run state — populations, champion
//! trackers, adaptive rates, counters, and (critically) the exact RNG
//! state — so a restored run continues **bit-identically** to the
//! uninterrupted one. The struct is `serde`-serializable; pick any format
//! (the `hga` CLI uses JSON).
//!
//! Bit-identity is stricter than "same RNG": per-generation history rows
//! record cache hit / true-eval splits, so the restored run must also see
//! the *same cache warmth* the interrupted run would have had. Version-2
//! checkpoints therefore capture the scheduler cache (exact generational
//! structure, [`CacheSnapshot`]), the lifetime scheduler counters
//! ([`SchedStats`]), and — on observed runs — the convergence detector's
//! sliding window ([`DetectorState`]), so verdicts fire on the same
//! generation they would have without the interruption. All of these are
//! `#[serde(default)]`: version-1 checkpoint files still load, they just
//! resume with a cold cache and fresh counters.

use crate::adaptive::AdaptiveRates;
use crate::config::GaConfig;
use crate::engine::{FeasibilityFilter, GaRun, GenerationStats, StoreAttachment};
use crate::evaluator::Evaluator;
use crate::individual::Haplotype;
use crate::population::MultiPopulation;
use crate::sched::SchedStats;
use crate::store::CacheSnapshot;
use ld_observe::dynamics::DetectorState;
use ld_observe::{Event, Observer};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Newest checkpoint format this build writes (and the highest it reads).
pub const CHECKPOINT_VERSION: u32 = 2;

/// Complete serializable state of a [`GaRun`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version. Missing in version-1 files (deserializes as 0);
    /// restore accepts anything up to [`CHECKPOINT_VERSION`].
    #[serde(default)]
    pub version: u32,
    /// Configuration of the run.
    pub config: GaConfig,
    /// Original seed (provenance only; the live state is in `rng`).
    pub seed: u64,
    /// Exact PRNG state.
    pub rng: ChaCha8Rng,
    /// Individuals per subpopulation, ascending size.
    pub population: Vec<Vec<Haplotype>>,
    /// Best individual per size.
    pub best_per_size: Vec<Option<Haplotype>>,
    /// Evaluations at which each size's best was reached.
    pub evals_to_best: Vec<u64>,
    /// Total evaluations so far.
    pub total_evaluations: u64,
    /// Generations executed.
    pub generation: usize,
    /// Stagnation counter.
    pub stagnation: usize,
    /// Random-immigrant counter.
    pub ri_counter: usize,
    /// Current mutation-operator rates.
    pub mutation_rates: Vec<f64>,
    /// Current crossover-operator rates.
    pub crossover_rates: Vec<f64>,
    /// Per-generation telemetry so far.
    pub history: Vec<GenerationStats>,
    /// Lifetime scheduler counters at capture time, carried forward on
    /// restore so `sched_stats()` totals survive the interruption.
    /// Defaults to zeros for version-1 files.
    #[serde(default)]
    pub sched_totals: SchedStats,
    /// Exact contents and generational structure of the scheduler's hot
    /// fitness cache. `None` when the run had no cache attached (or the
    /// file predates version 2); restoring `None` resumes cold.
    #[serde(default)]
    pub cache: Option<CacheSnapshot>,
    /// Convergence-detector sliding window (observed runs only). `None`
    /// on unobserved runs and version-1 files.
    #[serde(default)]
    pub dynamics: Option<DetectorState>,
}

impl<'e, E: Evaluator> GaRun<'e, E> {
    /// Capture the run state. Valid between generations (i.e. any time
    /// [`GaRun::step`] is not executing — which is always, from safe code).
    ///
    /// Also flushes the run's on-disk fitness store (if one is attached),
    /// so the durable tier is at least as fresh as the checkpoint file the
    /// caller is about to write.
    pub fn checkpoint(&self) -> Checkpoint {
        self.service.flush_store();
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config: self.cfg().clone(),
            seed: self.seed(),
            rng: self.rng_state().clone(),
            population: self
                .population()
                .iter()
                .map(|sp| sp.individuals().to_vec())
                .collect(),
            best_per_size: self.champions(),
            evals_to_best: self.evals_to_best().to_vec(),
            total_evaluations: self.total_evaluations(),
            generation: self.generation(),
            stagnation: self.stagnation(),
            ri_counter: self.ri_counter(),
            mutation_rates: self.mutation_rates().rates().to_vec(),
            crossover_rates: self.crossover_rates().rates().to_vec(),
            history: self.history().to_vec(),
            sched_totals: self.sched_stats().clone(),
            cache: self.service.cache_snapshot(),
            dynamics: self.detector_state(),
        }
    }

    /// Restore a run from a checkpoint. The evaluator must serve the same
    /// panel the checkpoint was taken on; the feasibility filter (not
    /// serializable) must be re-supplied by the caller.
    pub fn restore(
        evaluator: &'e E,
        checkpoint: Checkpoint,
        feasibility: Option<FeasibilityFilter>,
    ) -> Result<Self, String> {
        Self::restore_observed(evaluator, checkpoint, feasibility, Observer::disabled())
    }

    /// [`GaRun::restore`] with an [`Observer`] attached from the first
    /// post-resume batch. Emits [`Event::RunResumed`] and re-attaches the
    /// dynamics layer from the checkpointed detector state, so convergence
    /// verdicts fire on the same generation as the uninterrupted run.
    pub fn restore_observed(
        evaluator: &'e E,
        checkpoint: Checkpoint,
        feasibility: Option<FeasibilityFilter>,
        observer: Observer,
    ) -> Result<Self, String> {
        Self::restore_full(evaluator, checkpoint, feasibility, observer, None)
    }

    /// [`GaRun::restore_observed`] with an optional shared
    /// [`crate::FitnessStore`] attachment replacing the run-private
    /// `sched_cache` tier (see [`crate::GaEngine::with_store`]). The
    /// checkpointed hot-cache contents are loaded into whichever tier ends
    /// up attached.
    pub fn restore_full(
        evaluator: &'e E,
        checkpoint: Checkpoint,
        feasibility: Option<FeasibilityFilter>,
        observer: Observer,
        store: Option<StoreAttachment>,
    ) -> Result<Self, String> {
        if checkpoint.version > CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {} is newer than this build understands ({})",
                checkpoint.version, CHECKPOINT_VERSION
            ));
        }
        let cfg = &checkpoint.config;
        cfg.validate(evaluator.n_snps())?;
        let n_sizes = cfg.max_size - cfg.min_size + 1;
        if checkpoint.population.len() != n_sizes
            || checkpoint.best_per_size.len() != n_sizes
            || checkpoint.evals_to_best.len() != n_sizes
        {
            return Err(format!(
                "checkpoint shape mismatch: expected {n_sizes} sizes"
            ));
        }
        let mut pop = MultiPopulation::new(
            evaluator.n_snps(),
            cfg.min_size,
            cfg.max_size,
            cfg.population_size,
        );
        for (i, members) in checkpoint.population.iter().enumerate() {
            let size = cfg.min_size + i;
            for h in members {
                if h.size() != size {
                    return Err(format!(
                        "checkpoint individual {h} in the size-{size} subpopulation"
                    ));
                }
                if !h.is_evaluated() {
                    return Err(format!("checkpoint individual {h} unevaluated"));
                }
                if h.snps().iter().any(|&s| s >= evaluator.n_snps()) {
                    return Err(format!(
                        "checkpoint individual {h} references SNPs outside the panel"
                    ));
                }
            }
            let subpop = pop.get_mut(size).expect("managed size");
            subpop.replace_all(members.clone());
            subpop
                .check_invariants()
                .map_err(|e| format!("size-{size} subpopulation invalid: {e}"))?;
        }
        let mut mutation_rates = AdaptiveRates::new(
            3,
            cfg.mutation_rate,
            cfg.delta,
            cfg.scheme.adaptive_mutation,
        );
        mutation_rates
            .restore_rates(&checkpoint.mutation_rates)
            .map_err(|e| format!("mutation rates: {e}"))?;
        let mut crossover_rates = AdaptiveRates::new(
            2,
            cfg.crossover_rate,
            cfg.delta,
            cfg.scheme.adaptive_crossover,
        );
        crossover_rates
            .restore_rates(&checkpoint.crossover_rates)
            .map_err(|e| format!("crossover rates: {e}"))?;

        let generation = checkpoint.generation;
        let mut run = GaRun::from_parts(
            evaluator,
            checkpoint.config,
            checkpoint.rng,
            checkpoint.seed,
            feasibility,
            pop,
            checkpoint.total_evaluations,
            checkpoint.best_per_size,
            checkpoint.evals_to_best,
            mutation_rates,
            crossover_rates,
            checkpoint.stagnation,
            checkpoint.ri_counter,
            checkpoint.history,
            generation,
            observer,
            checkpoint.dynamics,
            store,
        );
        // Rehydrate the scheduler: lifetime counters continue from the
        // captured totals, and the hot cache comes back with its exact
        // generational structure so per-generation hit counts replay
        // identically (a no-op when the restored run has no cache tier).
        run.service.restore_totals(checkpoint.sched_totals);
        if let Some(snapshot) = &checkpoint.cache {
            run.service.restore_cache_snapshot(snapshot);
        }
        let obs = run.service.observer();
        obs.set_generation(generation as u64);
        obs.emit_with(|| Event::RunResumed {
            generation: generation as u64,
        });
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::FnEvaluator;
    use crate::StepOutcome;
    use ld_data::SnpId;

    fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        FnEvaluator::new(25, |s: &[SnpId]| {
            s.iter().map(|&x| x as f64).sum::<f64>() + 10.0 * s.len() as f64
        })
    }

    fn cfg() -> GaConfig {
        GaConfig {
            population_size: 50,
            min_size: 2,
            max_size: 3,
            matings_per_generation: 8,
            stagnation_limit: 20,
            max_generations: 200,
            ..GaConfig::default()
        }
    }

    /// The decisive property: interrupt + restore continues bit-identically.
    #[test]
    fn resume_is_bit_identical_to_uninterrupted_run() {
        let eval = toy();
        // Uninterrupted reference.
        let mut reference = GaRun::new(&eval, cfg(), 11, None).unwrap();
        loop {
            match reference.step() {
                StepOutcome::StagnationLimitReached | StepOutcome::GenerationCapReached => break,
                _ => {}
            }
        }
        let reference = reference.finish();

        // Interrupted at generation 7, checkpointed, restored, continued.
        let mut first = GaRun::new(&eval, cfg(), 11, None).unwrap();
        for _ in 0..7 {
            let _ = first.step();
        }
        let cp = first.checkpoint();
        drop(first);
        let mut resumed = GaRun::restore(&eval, cp, None).unwrap();
        loop {
            match resumed.step() {
                StepOutcome::StagnationLimitReached | StepOutcome::GenerationCapReached => break,
                _ => {}
            }
        }
        let resumed = resumed.finish();

        assert_eq!(resumed.generations, reference.generations);
        assert_eq!(resumed.total_evaluations, reference.total_evaluations);
        assert_eq!(
            resumed.best_of_size(3).unwrap().snps(),
            reference.best_of_size(3).unwrap().snps()
        );
        assert_eq!(resumed.history.len(), reference.history.len());
        // Spot-check a late-history row for exact agreement.
        let (a, b) = (
            resumed.history.last().unwrap(),
            reference.history.last().unwrap(),
        );
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.mutation_rates, b.mutation_rates);
    }

    /// The PR-9 property: with a scheduler cache AND an observer attached,
    /// resume still replays bit-identically — per-generation cache-hit /
    /// true-eval splits and dynamics snapshots included — because the
    /// checkpoint captures the cache's exact generational structure and
    /// the detector's sliding window.
    #[test]
    fn resume_with_cache_and_observer_is_bit_identical() {
        use ld_observe::{Registry, RingSink};
        use std::sync::Arc;

        let eval = toy();
        let cached_cfg = GaConfig {
            sched_cache: 64,
            ..cfg()
        };
        let observer = |sink: &Arc<RingSink>| {
            Observer::new(
                "cp-test",
                sink.clone() as Arc<dyn ld_observe::Sink>,
                Registry::new(),
            )
        };

        let ref_sink = Arc::new(RingSink::new(4096));
        let mut reference = GaRun::new_observed(
            &eval,
            cached_cfg.clone(),
            11,
            None,
            None,
            observer(&ref_sink),
        )
        .unwrap();
        loop {
            match reference.step() {
                StepOutcome::StagnationLimitReached | StepOutcome::GenerationCapReached => break,
                _ => {}
            }
        }
        let ref_totals = reference.sched_stats().clone();
        let reference = reference.finish();

        let first_sink = Arc::new(RingSink::new(4096));
        let mut first = GaRun::new_observed(
            &eval,
            cached_cfg.clone(),
            11,
            None,
            None,
            observer(&first_sink),
        )
        .unwrap();
        for _ in 0..7 {
            let _ = first.step();
        }
        let cp = first.checkpoint();
        assert_eq!(cp.version, CHECKPOINT_VERSION);
        assert!(cp.cache.as_ref().is_some_and(|c| !c.is_empty()));
        assert!(cp.dynamics.is_some());
        drop(first);

        let res_sink = Arc::new(RingSink::new(4096));
        let mut resumed = GaRun::restore_observed(&eval, cp, None, observer(&res_sink)).unwrap();
        loop {
            match resumed.step() {
                StepOutcome::StagnationLimitReached | StepOutcome::GenerationCapReached => break,
                _ => {}
            }
        }
        let res_totals = resumed.sched_stats().clone();
        let resumed = resumed.finish();

        assert_eq!(resumed.generations, reference.generations);
        assert_eq!(resumed.total_evaluations, reference.total_evaluations);
        // Lifetime scheduler counters carried across the interruption.
        assert_eq!(res_totals.cache_hits, ref_totals.cache_hits);
        assert_eq!(res_totals.true_evals, ref_totals.true_evals);
        assert_eq!(res_totals.cache_misses, ref_totals.cache_misses);
        // Every post-resume history row agrees on the warmth-sensitive
        // split and the dynamics snapshot (no wall-clock inside either).
        for (a, b) in resumed.history.iter().zip(reference.history.iter()) {
            assert_eq!(a.evaluations, b.evaluations, "gen {}", a.generation);
            assert_eq!(
                a.sched.cache_hits, b.sched.cache_hits,
                "gen {}",
                a.generation
            );
            assert_eq!(
                a.sched.true_evals, b.sched.true_evals,
                "gen {}",
                a.generation
            );
            assert_eq!(a.dynamics, b.dynamics, "gen {}", a.generation);
        }
        // The resumed run announced itself and re-entered at the right
        // generation.
        assert!(res_sink
            .events()
            .iter()
            .any(|e| matches!(e.event, Event::RunResumed { generation: 7 })));
        // Detector verdicts fire on the same generations as the
        // uninterrupted run — the sliding window was restored, not reset.
        let verdicts = |evs: &[ld_observe::Envelope]| -> Vec<(u64, &'static str)> {
            evs.iter()
                .filter_map(|e| match &e.event {
                    Event::Stagnation { .. } => Some((e.generation, "stagnation")),
                    Event::Converged { .. } => Some((e.generation, "converged")),
                    _ => None,
                })
                .filter(|(g, _)| *g > 7)
                .collect()
        };
        assert_eq!(verdicts(&res_sink.events()), verdicts(&ref_sink.events()));
    }

    /// Version-1 checkpoint JSON (no version / sched_totals / cache /
    /// dynamics fields) still restores — cold cache, fresh counters.
    #[test]
    fn legacy_v1_checkpoint_json_still_loads() {
        let eval = toy();
        let mut run = GaRun::new(&eval, cfg(), 5, None).unwrap();
        for _ in 0..3 {
            let _ = run.step();
        }
        let mut json: serde_json::Value = serde_json::to_value(&run.checkpoint()).unwrap();
        let dropped = ["version", "sched_totals", "cache", "dynamics"];
        match &mut json {
            serde_json::Value::Object(pairs) => {
                let before = pairs.len();
                pairs.retain(|(k, _)| !dropped.contains(&k.as_str()));
                assert_eq!(before - pairs.len(), dropped.len(), "v2 fields missing");
            }
            _ => panic!("checkpoint did not serialize as an object"),
        }
        let legacy: Checkpoint = serde_json::from_value(json).unwrap();
        assert_eq!(legacy.version, 0);
        assert!(legacy.cache.is_none());
        let mut restored = GaRun::restore(&eval, legacy, None).unwrap();
        let _ = restored.step();
        assert_eq!(restored.generation(), 4);
    }

    #[test]
    fn restore_rejects_future_versions() {
        let eval = toy();
        let mut run = GaRun::new(&eval, cfg(), 5, None).unwrap();
        let _ = run.step();
        let mut cp = run.checkpoint();
        cp.version = CHECKPOINT_VERSION + 1;
        let err = GaRun::restore(&eval, cp, None).err().expect("must reject");
        assert!(err.contains("newer"), "err: {err}");
    }

    #[test]
    fn checkpoint_json_roundtrip() {
        let eval = toy();
        let mut run = GaRun::new(&eval, cfg(), 3, None).unwrap();
        for _ in 0..5 {
            let _ = run.step();
        }
        let cp = run.checkpoint();
        let json = serde_json::to_string(&cp).unwrap();
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.generation, cp.generation);
        assert_eq!(back.total_evaluations, cp.total_evaluations);
        assert_eq!(back.population.len(), cp.population.len());
        // Restore from the JSON roundtrip and take one step.
        let mut restored = GaRun::restore(&eval, back, None).unwrap();
        let _ = restored.step();
        assert_eq!(restored.generation(), cp.generation + 1);
    }

    #[test]
    fn restore_rejects_corrupt_checkpoints() {
        let eval = toy();
        let mut run = GaRun::new(&eval, cfg(), 3, None).unwrap();
        let _ = run.step();
        let cp = run.checkpoint();

        // Wrong panel: a 10-SNP evaluator cannot serve a 25-SNP checkpoint.
        let small = FnEvaluator::new(10, |_: &[SnpId]| 0.0);
        let mut bad = cp.clone();
        bad.config.max_size = 3;
        // (config validates against panel first: max_size 3 <= 10 passes,
        // but individuals reference SNPs >= 10.)
        assert!(GaRun::restore(&small, bad, None).is_err());

        // Truncated population vector.
        let mut bad = cp.clone();
        bad.population.pop();
        assert!(GaRun::restore(&eval, bad, None).is_err());

        // Corrupt adaptive rates.
        let mut bad = cp.clone();
        bad.mutation_rates = vec![0.5, 0.5, 0.5];
        assert!(GaRun::restore(&eval, bad, None).is_err());

        // Unevaluated individual smuggled in.
        let mut bad = cp.clone();
        bad.population[0].push(Haplotype::new(vec![1, 2]));
        assert!(GaRun::restore(&eval, bad, None).is_err());

        // Wrong-size individual.
        let mut bad = cp;
        let mut h = Haplotype::new(vec![1, 2, 3]);
        h.set_fitness(1.0);
        bad.population[0].push(h);
        assert!(GaRun::restore(&eval, bad, None).is_err());
    }
}
