//! Checkpoint / resume for long GA runs.
//!
//! The paper ran on a shared 2003 cluster where long jobs die; today's
//! equivalent is spot instances and preemptible batch queues. A
//! [`Checkpoint`] captures the *entire* run state — populations, champion
//! trackers, adaptive rates, counters, and (critically) the exact RNG
//! state — so a restored run continues **bit-identically** to the
//! uninterrupted one. The struct is `serde`-serializable; pick any format
//! (the `hga` CLI uses JSON).

use crate::adaptive::AdaptiveRates;
use crate::config::GaConfig;
use crate::engine::{FeasibilityFilter, GaRun, GenerationStats};
use crate::evaluator::Evaluator;
use crate::individual::Haplotype;
use crate::population::MultiPopulation;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Complete serializable state of a [`GaRun`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Configuration of the run.
    pub config: GaConfig,
    /// Original seed (provenance only; the live state is in `rng`).
    pub seed: u64,
    /// Exact PRNG state.
    pub rng: ChaCha8Rng,
    /// Individuals per subpopulation, ascending size.
    pub population: Vec<Vec<Haplotype>>,
    /// Best individual per size.
    pub best_per_size: Vec<Option<Haplotype>>,
    /// Evaluations at which each size's best was reached.
    pub evals_to_best: Vec<u64>,
    /// Total evaluations so far.
    pub total_evaluations: u64,
    /// Generations executed.
    pub generation: usize,
    /// Stagnation counter.
    pub stagnation: usize,
    /// Random-immigrant counter.
    pub ri_counter: usize,
    /// Current mutation-operator rates.
    pub mutation_rates: Vec<f64>,
    /// Current crossover-operator rates.
    pub crossover_rates: Vec<f64>,
    /// Per-generation telemetry so far.
    pub history: Vec<GenerationStats>,
}

impl<'e, E: Evaluator> GaRun<'e, E> {
    /// Capture the run state. Valid between generations (i.e. any time
    /// [`GaRun::step`] is not executing — which is always, from safe code).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            config: self.cfg().clone(),
            seed: self.seed(),
            rng: self.rng_state().clone(),
            population: self
                .population()
                .iter()
                .map(|sp| sp.individuals().to_vec())
                .collect(),
            best_per_size: self.champions(),
            evals_to_best: self.evals_to_best().to_vec(),
            total_evaluations: self.total_evaluations(),
            generation: self.generation(),
            stagnation: self.stagnation(),
            ri_counter: self.ri_counter(),
            mutation_rates: self.mutation_rates().rates().to_vec(),
            crossover_rates: self.crossover_rates().rates().to_vec(),
            history: self.history().to_vec(),
        }
    }

    /// Restore a run from a checkpoint. The evaluator must serve the same
    /// panel the checkpoint was taken on; the feasibility filter (not
    /// serializable) must be re-supplied by the caller.
    pub fn restore(
        evaluator: &'e E,
        checkpoint: Checkpoint,
        feasibility: Option<FeasibilityFilter>,
    ) -> Result<Self, String> {
        let cfg = &checkpoint.config;
        cfg.validate(evaluator.n_snps())?;
        let n_sizes = cfg.max_size - cfg.min_size + 1;
        if checkpoint.population.len() != n_sizes
            || checkpoint.best_per_size.len() != n_sizes
            || checkpoint.evals_to_best.len() != n_sizes
        {
            return Err(format!(
                "checkpoint shape mismatch: expected {n_sizes} sizes"
            ));
        }
        let mut pop = MultiPopulation::new(
            evaluator.n_snps(),
            cfg.min_size,
            cfg.max_size,
            cfg.population_size,
        );
        for (i, members) in checkpoint.population.iter().enumerate() {
            let size = cfg.min_size + i;
            for h in members {
                if h.size() != size {
                    return Err(format!(
                        "checkpoint individual {h} in the size-{size} subpopulation"
                    ));
                }
                if !h.is_evaluated() {
                    return Err(format!("checkpoint individual {h} unevaluated"));
                }
                if h.snps().iter().any(|&s| s >= evaluator.n_snps()) {
                    return Err(format!(
                        "checkpoint individual {h} references SNPs outside the panel"
                    ));
                }
            }
            let subpop = pop.get_mut(size).expect("managed size");
            subpop.replace_all(members.clone());
            subpop
                .check_invariants()
                .map_err(|e| format!("size-{size} subpopulation invalid: {e}"))?;
        }
        let mut mutation_rates = AdaptiveRates::new(
            3,
            cfg.mutation_rate,
            cfg.delta,
            cfg.scheme.adaptive_mutation,
        );
        mutation_rates
            .restore_rates(&checkpoint.mutation_rates)
            .map_err(|e| format!("mutation rates: {e}"))?;
        let mut crossover_rates = AdaptiveRates::new(
            2,
            cfg.crossover_rate,
            cfg.delta,
            cfg.scheme.adaptive_crossover,
        );
        crossover_rates
            .restore_rates(&checkpoint.crossover_rates)
            .map_err(|e| format!("crossover rates: {e}"))?;

        Ok(GaRun::from_parts(
            evaluator,
            checkpoint.config,
            checkpoint.rng,
            checkpoint.seed,
            feasibility,
            pop,
            checkpoint.total_evaluations,
            checkpoint.best_per_size,
            checkpoint.evals_to_best,
            mutation_rates,
            crossover_rates,
            checkpoint.stagnation,
            checkpoint.ri_counter,
            checkpoint.history,
            checkpoint.generation,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::FnEvaluator;
    use crate::StepOutcome;
    use ld_data::SnpId;

    fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        FnEvaluator::new(25, |s: &[SnpId]| {
            s.iter().map(|&x| x as f64).sum::<f64>() + 10.0 * s.len() as f64
        })
    }

    fn cfg() -> GaConfig {
        GaConfig {
            population_size: 50,
            min_size: 2,
            max_size: 3,
            matings_per_generation: 8,
            stagnation_limit: 20,
            max_generations: 200,
            ..GaConfig::default()
        }
    }

    /// The decisive property: interrupt + restore continues bit-identically.
    #[test]
    fn resume_is_bit_identical_to_uninterrupted_run() {
        let eval = toy();
        // Uninterrupted reference.
        let mut reference = GaRun::new(&eval, cfg(), 11, None).unwrap();
        loop {
            match reference.step() {
                StepOutcome::StagnationLimitReached | StepOutcome::GenerationCapReached => break,
                _ => {}
            }
        }
        let reference = reference.finish();

        // Interrupted at generation 7, checkpointed, restored, continued.
        let mut first = GaRun::new(&eval, cfg(), 11, None).unwrap();
        for _ in 0..7 {
            let _ = first.step();
        }
        let cp = first.checkpoint();
        drop(first);
        let mut resumed = GaRun::restore(&eval, cp, None).unwrap();
        loop {
            match resumed.step() {
                StepOutcome::StagnationLimitReached | StepOutcome::GenerationCapReached => break,
                _ => {}
            }
        }
        let resumed = resumed.finish();

        assert_eq!(resumed.generations, reference.generations);
        assert_eq!(resumed.total_evaluations, reference.total_evaluations);
        assert_eq!(
            resumed.best_of_size(3).unwrap().snps(),
            reference.best_of_size(3).unwrap().snps()
        );
        assert_eq!(resumed.history.len(), reference.history.len());
        // Spot-check a late-history row for exact agreement.
        let (a, b) = (
            resumed.history.last().unwrap(),
            reference.history.last().unwrap(),
        );
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.mutation_rates, b.mutation_rates);
    }

    #[test]
    fn checkpoint_json_roundtrip() {
        let eval = toy();
        let mut run = GaRun::new(&eval, cfg(), 3, None).unwrap();
        for _ in 0..5 {
            let _ = run.step();
        }
        let cp = run.checkpoint();
        let json = serde_json::to_string(&cp).unwrap();
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.generation, cp.generation);
        assert_eq!(back.total_evaluations, cp.total_evaluations);
        assert_eq!(back.population.len(), cp.population.len());
        // Restore from the JSON roundtrip and take one step.
        let mut restored = GaRun::restore(&eval, back, None).unwrap();
        let _ = restored.step();
        assert_eq!(restored.generation(), cp.generation + 1);
    }

    #[test]
    fn restore_rejects_corrupt_checkpoints() {
        let eval = toy();
        let mut run = GaRun::new(&eval, cfg(), 3, None).unwrap();
        let _ = run.step();
        let cp = run.checkpoint();

        // Wrong panel: a 10-SNP evaluator cannot serve a 25-SNP checkpoint.
        let small = FnEvaluator::new(10, |_: &[SnpId]| 0.0);
        let mut bad = cp.clone();
        bad.config.max_size = 3;
        // (config validates against panel first: max_size 3 <= 10 passes,
        // but individuals reference SNPs >= 10.)
        assert!(GaRun::restore(&small, bad, None).is_err());

        // Truncated population vector.
        let mut bad = cp.clone();
        bad.population.pop();
        assert!(GaRun::restore(&eval, bad, None).is_err());

        // Corrupt adaptive rates.
        let mut bad = cp.clone();
        bad.mutation_rates = vec![0.5, 0.5, 0.5];
        assert!(GaRun::restore(&eval, bad, None).is_err());

        // Unevaluated individual smuggled in.
        let mut bad = cp.clone();
        bad.population[0].push(Haplotype::new(vec![1, 2]));
        assert!(GaRun::restore(&eval, bad, None).is_err());

        // Wrong-size individual.
        let mut bad = cp;
        let mut h = Haplotype::new(vec![1, 2, 3]);
        h.set_fitness(1.0);
        bad.population[0].push(h);
        assert!(GaRun::restore(&eval, bad, None).is_err());
    }
}
