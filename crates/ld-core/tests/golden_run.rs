//! Whole-run golden equivalence: an entire GA run driven by the packed
//! word-wide evaluation kernel must be bit-for-bit identical to the same
//! run driven by the column-store scratch kernel.
//!
//! Per-call equivalence (ld-stats' `golden_equiv`) already pins every
//! kernel to the legacy oracle; this suite closes the loop at the system
//! level, where any last-ulp fitness difference would compound through
//! selection, adaptive operator rates, and stagnation counters into a
//! visibly different trajectory. Identical histories here mean the kernel
//! swap is invisible to the GA.

use ld_core::{GaConfig, GaEngine, KernelPath, RunResult, StatsEvaluator};
use ld_stats::{EvalPipeline, FitnessKind};

fn small_config() -> GaConfig {
    GaConfig {
        population_size: 40,
        min_size: 2,
        max_size: 4,
        matings_per_generation: 8,
        stagnation_limit: 12,
        ri_stagnation: 5,
        max_generations: 60,
        ..GaConfig::default()
    }
}

fn run_with(kind: FitnessKind, path: KernelPath, seed: u64) -> RunResult {
    let data = ld_data::synthetic::lille_51(42);
    let pipeline = EvalPipeline::new(&data, kind)
        .unwrap()
        .with_kernel_path(path);
    let eval = StatsEvaluator::new(pipeline);
    GaEngine::new(&eval, small_config(), seed).unwrap().run()
}

/// Field-by-field bit comparison of two runs (`RunResult` holds floats, so
/// no blanket `PartialEq`; `NaN` placeholders compare by bit pattern).
fn assert_runs_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.seed, b.seed, "{what}: seed");
    assert_eq!(a.min_size, b.min_size, "{what}: min_size");
    assert_eq!(a.generations, b.generations, "{what}: generations");
    assert_eq!(
        a.total_evaluations, b.total_evaluations,
        "{what}: total evaluations"
    );
    assert_eq!(a.evals_to_best, b.evals_to_best, "{what}: evals-to-best");
    assert_eq!(a.best_per_size.len(), b.best_per_size.len());
    for (i, (x, y)) in a.best_per_size.iter().zip(&b.best_per_size).enumerate() {
        match (x, y) {
            (Some(hx), Some(hy)) => {
                assert_eq!(hx.snps(), hy.snps(), "{what}: best snps at size idx {i}");
                assert_eq!(
                    hx.fitness().to_bits(),
                    hy.fitness().to_bits(),
                    "{what}: best fitness at size idx {i}"
                );
            }
            (None, None) => {}
            _ => panic!("{what}: best presence differs at size idx {i}"),
        }
    }
    assert_eq!(a.history.len(), b.history.len(), "{what}: history length");
    for (ga, gb) in a.history.iter().zip(&b.history) {
        assert_eq!(ga.generation, gb.generation);
        assert_eq!(ga.evaluations, gb.evaluations, "{what}: gen evaluations");
        assert_eq!(ga.immigrants, gb.immigrants, "{what}: immigrants");
        for (x, y) in ga.best_per_size.iter().zip(&gb.best_per_size) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: gen {} best-per-size",
                ga.generation
            );
        }
        for (x, y) in ga.mutation_rates.iter().zip(&gb.mutation_rates) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: mutation rates");
        }
        for (x, y) in ga.crossover_rates.iter().zip(&gb.crossover_rates) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: crossover rates");
        }
    }
}

#[test]
fn packed_run_matches_scratch_run() {
    // The paper's objective (CLUMP T1) over the Lille synthetic dataset:
    // same seed, two kernels, one trajectory.
    let packed = run_with(FitnessKind::ClumpT1, KernelPath::Packed, 7);
    let scratch = run_with(FitnessKind::ClumpT1, KernelPath::Scratch, 7);
    assert!(packed.generations > 0 && packed.total_evaluations > 0);
    assert_runs_identical(&packed, &scratch, "ClumpT1 seed 7");
}

#[test]
fn packed_run_matches_scratch_run_em_lrt() {
    // EmLrt exercises the pooled two-part fit every evaluation.
    let packed = run_with(FitnessKind::EmLrt, KernelPath::Packed, 11);
    let scratch = run_with(FitnessKind::EmLrt, KernelPath::Scratch, 11);
    assert_runs_identical(&packed, &scratch, "EmLrt seed 11");
}

#[test]
fn packed_run_is_reproducible() {
    let a = run_with(FitnessKind::ClumpT1, KernelPath::Packed, 3);
    let b = run_with(FitnessKind::ClumpT1, KernelPath::Packed, 3);
    assert_runs_identical(&a, &b, "packed repeat seed 3");
}
