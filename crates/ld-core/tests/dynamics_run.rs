//! Search-dynamics layer, end to end on real runs: the convergence
//! detector's firing discipline, per-generation snapshot flow, and the
//! bit-identity contract — attaching the dynamics layer must not move
//! the GA trajectory by a single ulp.

use ld_core::{evaluator::FnEvaluator, GaConfig, GaEngine, RunResult};
use ld_observe::{Event, Observer, Registry, RingSink};
use ld_stats::{EvalPipeline, FitnessKind};
use std::sync::Arc;

fn observed(run_id: &str) -> (Observer, Arc<RingSink>) {
    let ring = Arc::new(RingSink::new(100_000));
    let observer = Observer::new(run_id, Arc::clone(&ring) as _, Registry::new());
    (observer, ring)
}

#[test]
fn stagnation_detector_fires_on_a_flat_fitness_run() {
    // A constant objective: nothing ever improves, so every generation
    // after the first is stagnant. The run's own §4.6 criterion would
    // stop it at `stagnation_limit`; stepping past that by hand (as an
    // island driver might) must trip the detector, whose window is
    // deliberately one generation longer than the criterion.
    let eval = FnEvaluator::new(20, |_s: &[usize]| 1.0);
    let cfg = GaConfig {
        population_size: 30,
        min_size: 2,
        max_size: 3,
        matings_per_generation: 6,
        stagnation_limit: 6,
        ri_stagnation: 100, // keep immigrants out of the picture
        max_generations: 40,
        ..GaConfig::default()
    };
    let (observer, ring) = observed("flat");
    let engine = GaEngine::new(&eval, cfg, 9)
        .unwrap()
        .with_observer(observer);
    let mut run = engine.start().unwrap();
    for _ in 0..30 {
        run.try_step().unwrap();
    }
    let events = ring.take();
    let fired: Vec<u64> = events
        .iter()
        .filter(|e| matches!(e.event, Event::Stagnation { .. }))
        .map(|e| e.generation)
        .collect();
    assert!(!fired.is_empty(), "flat run never tripped the detector");
    // Warm-up plus a full window: never before the run's own criterion
    // would have ended it.
    assert!(
        fired[0] > 6,
        "detector fired at generation {} — inside the run's own stagnation budget",
        fired[0]
    );
    // A flat run keeps real diversity, so the verdict is stagnation (the
    // search is stuck but has not collapsed), not convergence.
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.event, Event::Converged { .. })),
        "flat run misdiagnosed as converged"
    );
}

#[test]
fn detector_is_silent_on_the_reference_trajectory() {
    // The lille-51 reference run terminates through its own §4.6
    // criterion; the detector window is longer than that, so a normally
    // driven run must produce zero detector events — while still
    // producing one dynamics snapshot per generation.
    let data = ld_data::synthetic::lille_51(42);
    let pipeline = EvalPipeline::new(&data, FitnessKind::ClumpT1).unwrap();
    let eval = ld_core::StatsEvaluator::new(pipeline);
    let cfg = GaConfig {
        population_size: 40,
        min_size: 2,
        max_size: 4,
        matings_per_generation: 8,
        stagnation_limit: 12,
        ri_stagnation: 5,
        max_generations: 60,
        ..GaConfig::default()
    };
    let (observer, ring) = observed("lille");
    let result = GaEngine::new(&eval, cfg, 7)
        .unwrap()
        .with_observer(observer)
        .run();
    let events = ring.take();
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.event, Event::Stagnation { .. } | Event::Converged { .. })),
        "reference run tripped the detector"
    );
    let snapshots = events
        .iter()
        .filter(|e| matches!(e.event, Event::Dynamics(_)))
        .count();
    assert_eq!(
        snapshots, result.generations,
        "one dynamics snapshot per generation"
    );
    // Every history row carries its snapshot too, reconciled with the
    // row's own scheduler window.
    for g in &result.history {
        let d = g.dynamics.as_ref().expect("observed row has dynamics");
        assert_eq!(d.true_evals, g.sched.true_evals);
        assert_eq!(d.cache_hits, g.sched.cache_hits);
        assert_eq!(d.immigrants, g.immigrants);
        assert_eq!(d.unique_fraction, 1.0, "§4.6 duplicate rejection");
        assert!(d.fitness_q1 <= d.fitness_median && d.fitness_median <= d.fitness_q3);
    }
}

/// Bit-level trajectory comparison (subset of the golden-run helper: the
/// fields the dynamics layer could plausibly perturb).
fn assert_same_trajectory(a: &RunResult, b: &RunResult) {
    assert_eq!(a.generations, b.generations, "generations");
    assert_eq!(a.total_evaluations, b.total_evaluations, "total evals");
    assert_eq!(a.evals_to_best, b.evals_to_best, "evals-to-best");
    for (x, y) in a.best_per_size.iter().zip(&b.best_per_size) {
        match (x, y) {
            (Some(hx), Some(hy)) => {
                assert_eq!(hx.snps(), hy.snps(), "champion snps");
                assert_eq!(hx.fitness().to_bits(), hy.fitness().to_bits());
            }
            (None, None) => {}
            _ => panic!("champion presence differs"),
        }
    }
    for (ga, gb) in a.history.iter().zip(&b.history) {
        assert_eq!(ga.evaluations, gb.evaluations);
        assert_eq!(ga.immigrants, gb.immigrants);
        for (x, y) in ga.best_per_size.iter().zip(&gb.best_per_size) {
            assert_eq!(x.to_bits(), y.to_bits(), "gen {} best", ga.generation);
        }
        for (x, y) in ga
            .mutation_rates
            .iter()
            .chain(&ga.crossover_rates)
            .zip(gb.mutation_rates.iter().chain(&gb.crossover_rates))
        {
            assert_eq!(x.to_bits(), y.to_bits(), "gen {} rates", ga.generation);
        }
    }
}

#[test]
fn dynamics_layer_does_not_move_the_trajectory() {
    let data = ld_data::synthetic::lille_51(42);
    let pipeline = EvalPipeline::new(&data, FitnessKind::ClumpT1).unwrap();
    let eval = ld_core::StatsEvaluator::new(pipeline);
    let cfg = GaConfig {
        population_size: 40,
        min_size: 2,
        max_size: 4,
        matings_per_generation: 8,
        stagnation_limit: 12,
        ri_stagnation: 5,
        max_generations: 60,
        ..GaConfig::default()
    };
    let bare = GaEngine::new(&eval, cfg.clone(), 7).unwrap().run();
    let (observer, _ring) = observed("onoff");
    let watched = GaEngine::new(&eval, cfg, 7)
        .unwrap()
        .with_observer(observer)
        .run();
    assert_same_trajectory(&bare, &watched);
    // The only difference: the watched run carries snapshots, the bare
    // run carries None (absent, not zero).
    assert!(bare.history.iter().all(|g| g.dynamics.is_none()));
    assert!(watched.history.iter().all(|g| g.dynamics.is_some()));
}
