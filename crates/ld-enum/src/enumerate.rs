//! Parallel exhaustive sweep with top-K tracking.
//!
//! This is the §3 landscape machinery and the source of the exact optima
//! in Table 2's "Dev." column: every k-subset of the SNP panel is scored
//! and the best K are retained. The rank space `0..C(n,k)` is chunked;
//! each rayon task unranks its chunk start, walks lexicographic
//! successors, and keeps a local top-K; locals merge at the end.

use crate::combinations::{next_combination, unrank};
use crate::count::choose_exact;
use ld_core::Evaluator;
use ld_data::SnpId;
use rayon::prelude::*;

/// A haplotype with its fitness, as produced by the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredHaplotype {
    /// Ascending SNP ids.
    pub snps: Vec<SnpId>,
    /// Fitness value.
    pub fitness: f64,
}

/// Bounded best-K collection (min at the back once sorted).
#[derive(Debug, Clone)]
pub struct TopK {
    capacity: usize,
    /// Kept sorted descending by fitness.
    items: Vec<ScoredHaplotype>,
}

impl TopK {
    /// Empty collection retaining the best `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TopK capacity must be positive");
        TopK {
            capacity,
            items: Vec::with_capacity(capacity + 1),
        }
    }

    /// Offer one candidate.
    pub fn offer(&mut self, snps: &[SnpId], fitness: f64) {
        if self.items.len() == self.capacity
            && fitness <= self.items.last().expect("non-empty").fitness
        {
            return;
        }
        let pos = self.items.partition_point(|x| x.fitness >= fitness);
        self.items.insert(
            pos,
            ScoredHaplotype {
                snps: snps.to_vec(),
                fitness,
            },
        );
        if self.items.len() > self.capacity {
            self.items.pop();
        }
    }

    /// Merge another collection into this one.
    pub fn merge(&mut self, other: TopK) {
        for item in other.items {
            self.offer(&item.snps, item.fitness);
        }
    }

    /// Best-first contents.
    pub fn items(&self) -> &[ScoredHaplotype] {
        &self.items
    }

    /// The single best item, if any.
    pub fn best(&self) -> Option<&ScoredHaplotype> {
        self.items.first()
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Exhaustively score every k-subset of `0..evaluator.n_snps()` and return
/// the best `top_k`, sweeping the rank space in parallel.
///
/// ```
/// use ld_core::evaluator::FnEvaluator;
/// use ld_enum::exhaustive_top_k;
///
/// let objective = FnEvaluator::new(10, |s: &[usize]| s.iter().sum::<usize>() as f64);
/// let top = exhaustive_top_k(&objective, 3, 2);
/// assert_eq!(top.best().unwrap().snps, vec![7, 8, 9]);
/// ```
///
/// # Panics
/// Panics when `C(n, k)` does not fit in `u128` (far beyond any enumerable
/// size) or `k > n`.
pub fn exhaustive_top_k<E: Evaluator>(evaluator: &E, k: usize, top_k: usize) -> TopK {
    let n = evaluator.n_snps();
    assert!(k <= n, "cannot enumerate {k}-subsets of {n} SNPs");
    let total = choose_exact(n as u64, k as u64).expect("search space fits u128");
    if total == 0 {
        return TopK::new(top_k);
    }
    // Chunks sized for good load balance without unranking overhead.
    let n_chunks = (rayon::current_num_threads() * 8).max(1) as u128;
    let chunk = total.div_ceil(n_chunks).max(1);
    let starts: Vec<u128> = (0..n_chunks)
        .map(|i| i * chunk)
        .filter(|&s| s < total)
        .collect();

    starts
        .into_par_iter()
        .map(|start| {
            let end = (start + chunk).min(total);
            let mut local = TopK::new(top_k);
            let mut c = unrank(start, n, k);
            let mut r = start;
            loop {
                local.offer(&c, evaluator.evaluate_one(&c));
                r += 1;
                if r >= end || !next_combination(&mut c, n) {
                    break;
                }
            }
            local
        })
        .reduce(
            || TopK::new(top_k),
            |mut a, b| {
                a.merge(b);
                a
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::evaluator::FnEvaluator;

    fn toy(n: usize) -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        FnEvaluator::new(n, |s: &[SnpId]| s.iter().map(|&x| x as f64).sum())
    }

    #[test]
    fn topk_keeps_best_sorted() {
        let mut t = TopK::new(3);
        t.offer(&[1], 5.0);
        t.offer(&[2], 9.0);
        t.offer(&[3], 1.0);
        t.offer(&[4], 7.0); // evicts 1.0
        assert_eq!(t.len(), 3);
        let fits: Vec<f64> = t.items().iter().map(|x| x.fitness).collect();
        assert_eq!(fits, vec![9.0, 7.0, 5.0]);
        assert_eq!(t.best().unwrap().snps, vec![2]);
        // Below-threshold offer is ignored.
        t.offer(&[5], 0.5);
        assert_eq!(t.len(), 3);
        assert_eq!(t.items().last().unwrap().fitness, 5.0);
    }

    #[test]
    fn topk_merge_is_global_best() {
        let mut a = TopK::new(2);
        a.offer(&[1], 3.0);
        a.offer(&[2], 8.0);
        let mut b = TopK::new(2);
        b.offer(&[3], 5.0);
        b.offer(&[4], 9.0);
        a.merge(b);
        let fits: Vec<f64> = a.items().iter().map(|x| x.fitness).collect();
        assert_eq!(fits, vec![9.0, 8.0]);
    }

    #[test]
    fn exhaustive_finds_known_optimum() {
        // Fitness = sum of ids: the best 3-subset of 0..10 is {7, 8, 9}.
        let eval = toy(10);
        let t = exhaustive_top_k(&eval, 3, 5);
        assert_eq!(t.best().unwrap().snps, vec![7, 8, 9]);
        assert_eq!(t.best().unwrap().fitness, 24.0);
        assert_eq!(t.len(), 5);
        // Second best is {6, 8, 9} = 23.
        assert_eq!(t.items()[1].fitness, 23.0);
    }

    #[test]
    fn exhaustive_covers_entire_space() {
        // top_k = C(n, k): the sweep must return every subset exactly once.
        let eval = toy(7);
        let t = exhaustive_top_k(&eval, 3, 35);
        assert_eq!(t.len(), 35);
        let mut keys: Vec<Vec<usize>> = t.items().iter().map(|x| x.snps.clone()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 35);
    }

    #[test]
    fn exhaustive_matches_paper_scale_quickly() {
        // C(51, 2) = 1275 — instantaneous even sequentially.
        let eval = toy(51);
        let t = exhaustive_top_k(&eval, 2, 1);
        assert_eq!(t.best().unwrap().snps, vec![49, 50]);
    }

    #[test]
    fn k_equals_n_single_subset() {
        let eval = toy(4);
        let t = exhaustive_top_k(&eval, 4, 3);
        assert_eq!(t.len(), 1);
        assert_eq!(t.best().unwrap().snps, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot enumerate")]
    fn k_above_n_panics() {
        let eval = toy(3);
        let _ = exhaustive_top_k(&eval, 4, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_topk_rejected() {
        let _ = TopK::new(0);
    }
}
