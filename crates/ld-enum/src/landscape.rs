//! Landscape analysis (paper §3).
//!
//! From exhaustive sweeps of consecutive sizes, quantify the two structural
//! observations that motivated the GA:
//!
//! 1. **Non-constructiveness** — "some very good haplotypes of size k are
//!    not always composed of haplotypes of smaller size with a good score":
//!    for each of the top size-k haplotypes, check whether it contains the
//!    best (or any top-M) size-(k−1) haplotype.
//! 2. **Incomparability across sizes** — "more the haplotype is large more
//!    its value is large": the per-size fitness ranges shift upward with k,
//!    so values from different sizes must not be compared directly.

use crate::enumerate::{exhaustive_top_k, ScoredHaplotype, TopK};
use ld_core::Evaluator;

/// Exhaustive statistics for one haplotype size.
#[derive(Debug, Clone)]
pub struct SizeLandscape {
    /// Haplotype size.
    pub size: usize,
    /// Best haplotypes, best first.
    pub top: Vec<ScoredHaplotype>,
    /// Maximum fitness over the whole size-k space.
    pub max_fitness: f64,
    /// Mean fitness over the whole space.
    pub mean_fitness: f64,
    /// Minimum fitness over the whole space.
    pub min_fitness: f64,
    /// Number of haplotypes enumerated (= C(n, k)).
    pub n_enumerated: u128,
}

/// Cross-size landscape report.
#[derive(Debug, Clone)]
pub struct LandscapeReport {
    /// Per-size statistics, ascending size.
    pub sizes: Vec<SizeLandscape>,
    /// For each consecutive size pair `(k−1, k)`: the fraction of the top
    /// size-k haplotypes that contain the *best* size-(k−1) haplotype.
    /// Low values demonstrate the paper's non-constructiveness claim.
    pub best_nested_fraction: Vec<f64>,
}

impl LandscapeReport {
    /// Statistics for one size.
    pub fn size(&self, k: usize) -> Option<&SizeLandscape> {
        self.sizes.iter().find(|s| s.size == k)
    }

    /// Exact optimum fitness for one size (for Table 2's Dev. column).
    pub fn optimum(&self, k: usize) -> Option<f64> {
        self.size(k).map(|s| s.max_fitness)
    }
}

/// Whether `inner` (ascending) is a subset of `outer` (ascending).
fn is_subset(inner: &[usize], outer: &[usize]) -> bool {
    let mut it = outer.iter();
    inner.iter().all(|x| it.by_ref().any(|y| y == x))
}

/// Exhaustively analyse sizes `min_k..=max_k`, keeping `top_m` haplotypes
/// per size.
pub fn landscape_report<E: Evaluator>(
    evaluator: &E,
    min_k: usize,
    max_k: usize,
    top_m: usize,
) -> LandscapeReport {
    assert!(min_k >= 1 && min_k <= max_k, "bad size range");
    let mut sizes = Vec::new();
    for k in min_k..=max_k {
        sizes.push(sweep_size(evaluator, k, top_m));
    }
    let mut best_nested_fraction = Vec::new();
    for pair in sizes.windows(2) {
        let smaller_best = pair[0].top.first();
        let frac = match smaller_best {
            Some(b) if !pair[1].top.is_empty() => {
                let n_containing = pair[1]
                    .top
                    .iter()
                    .filter(|h| is_subset(&b.snps, &h.snps))
                    .count();
                n_containing as f64 / pair[1].top.len() as f64
            }
            _ => 0.0,
        };
        best_nested_fraction.push(frac);
    }
    LandscapeReport {
        sizes,
        best_nested_fraction,
    }
}

/// One size's sweep, also computing whole-space min/mean/max.
fn sweep_size<E: Evaluator>(evaluator: &E, k: usize, top_m: usize) -> SizeLandscape {
    use crate::combinations::for_each_combination;
    // The top-K pass is parallel; the moment statistics ride along in a
    // second cheap sequential pass only for small spaces, otherwise they
    // are folded into the same parallel sweep. For simplicity and because
    // evaluation dominates, we fold statistics into a sequential sweep when
    // the space is small and reuse exhaustive_top_k otherwise.
    let n = evaluator.n_snps();
    let space = crate::count::choose_exact(n as u64, k as u64).expect("fits u128");
    if space <= 200_000 {
        let mut top = TopK::new(top_m);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0f64;
        let mut count: u128 = 0;
        for_each_combination(n, k, |c| {
            let f = evaluator.evaluate_one(c);
            top.offer(c, f);
            min = min.min(f);
            max = max.max(f);
            sum += f;
            count += 1;
        });
        SizeLandscape {
            size: k,
            top: top.items().to_vec(),
            max_fitness: max,
            mean_fitness: if count > 0 {
                sum / count as f64
            } else {
                f64::NAN
            },
            min_fitness: min,
            n_enumerated: count,
        }
    } else {
        // Large space: parallel top-K; min/mean come from a sample via the
        // top-K machinery's complement is impractical, so report NAN means.
        let top = exhaustive_top_k(evaluator, k, top_m);
        let max = top.best().map_or(f64::NAN, |b| b.fitness);
        SizeLandscape {
            size: k,
            top: top.items().to_vec(),
            max_fitness: max,
            mean_fitness: f64::NAN,
            min_fitness: f64::NAN,
            n_enumerated: space,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::evaluator::FnEvaluator;
    use ld_data::SnpId;

    #[test]
    fn subset_check() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[1, 1], &[1, 2]));
        assert!(is_subset(&[2], &[0, 2, 5]));
    }

    #[test]
    fn nested_objective_reports_full_nesting() {
        // Fitness = sum of ids: the best size-k extends the best size-(k-1),
        // so the best-nested fraction of the #1 entry is 1 when top_m = 1.
        let eval = FnEvaluator::new(10, |s: &[SnpId]| s.iter().map(|&x| x as f64).sum());
        let r = landscape_report(&eval, 2, 4, 1);
        assert_eq!(r.sizes.len(), 3);
        assert_eq!(r.best_nested_fraction, vec![1.0, 1.0]);
        assert_eq!(r.optimum(2), Some(17.0));
        assert_eq!(r.optimum(4), Some(30.0));
        assert_eq!(r.size(3).unwrap().n_enumerated, 120);
    }

    #[test]
    fn non_nested_objective_reports_low_nesting() {
        // A deceptive objective: pairs containing SNP 0 are great, triples
        // are best when they avoid SNP 0 entirely.
        let eval = FnEvaluator::new(8, |s: &[SnpId]| {
            if s.len() == 2 {
                if s[0] == 0 {
                    100.0
                } else {
                    1.0
                }
            } else if s.contains(&0) {
                1.0
            } else {
                50.0 + s.iter().map(|&x| x as f64).sum::<f64>()
            }
        });
        let r = landscape_report(&eval, 2, 3, 5);
        // Best pair contains 0; none of the top triples do.
        assert_eq!(r.best_nested_fraction, vec![0.0]);
    }

    #[test]
    fn fitness_ranges_grow_with_size() {
        // Mirrors the paper's observation: with a size-increasing objective,
        // per-size ranges shift upward.
        let eval = FnEvaluator::new(9, |s: &[SnpId]| {
            10.0 * s.len() as f64 + s.iter().map(|&x| x as f64).sum::<f64>() / 10.0
        });
        let r = landscape_report(&eval, 2, 4, 3);
        for w in r.sizes.windows(2) {
            assert!(w[1].max_fitness > w[0].max_fitness);
            assert!(w[1].mean_fitness > w[0].mean_fitness);
            assert!(w[1].min_fitness > w[0].min_fitness);
        }
    }

    #[test]
    fn moments_are_consistent() {
        let eval = FnEvaluator::new(7, |s: &[SnpId]| s.iter().map(|&x| x as f64).sum());
        let r = landscape_report(&eval, 2, 2, 2);
        let s = r.size(2).unwrap();
        assert!(s.min_fitness <= s.mean_fitness && s.mean_fitness <= s.max_fitness);
        assert_eq!(s.min_fitness, 1.0); // {0,1}
        assert_eq!(s.max_fitness, 11.0); // {5,6}
        assert_eq!(s.n_enumerated, 21);
    }
}
