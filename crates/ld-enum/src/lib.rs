//! # ld-enum — exhaustive enumeration and landscape analysis
//!
//! The paper's §3 justifies the GA by studying the problem structure:
//!
//! * **Table 1** counts the search space `C(n, k)` for n ∈ {51, 150, 249}
//!   and k = 2…6 — [`count`] reproduces those numbers exactly.
//! * The **landscape study** enumerates every haplotype of sizes 2–4 on the
//!   51-SNP problem and scores it, establishing that (a) good size-k
//!   haplotypes are not always extensions of good size-(k−1) haplotypes
//!   (killing constructive/greedy methods) and (b) fitness ranges grow
//!   with size (killing naive cross-size enumeration) — [`enumerate`] and
//!   [`landscape`] reproduce both, and the exact optima feed Table 2's
//!   "Dev." column.
//!
//! Enumeration parallelizes over the combinatorial rank space
//! ([`combinations`]): ranks are split into contiguous chunks, each chunk
//! is unranked once and then walked with the O(1)-amortized successor
//! function, and per-chunk top-K lists are merged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beam;
pub mod combinations;
pub mod count;
pub mod enumerate;
pub mod landscape;

pub use beam::{beam_search, BeamResult};
pub use combinations::{for_each_combination, unrank, Combinations};
pub use count::{choose_exact, choose_f64};
pub use enumerate::{exhaustive_top_k, ScoredHaplotype, TopK};
pub use landscape::{landscape_report, LandscapeReport, SizeLandscape};
