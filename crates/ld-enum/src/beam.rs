//! The constructive baseline the paper argues against (§3).
//!
//! "First, we can see that some very good haplotypes of size k are not
//! always composed of haplotypes of smaller size with a good score. This
//! characteristic makes the use of constructive method difficult, because
//! this algorithm would combine good haplotypes of size s−1 in order to
//! construct haplotypes of size s. With this method it wouldn't be
//! possible to get all the good haplotypes of size s."
//!
//! This module implements exactly that method — a beam search that keeps
//! the best `W` haplotypes of each size and extends them by one SNP — so
//! the claim can be tested: compare [`beam_search`]'s per-size champions
//! with the exhaustive optima ([`crate::enumerate`]). Whenever the beam
//! misses an optimum, the paper's §3 argument is demonstrated concretely.

use crate::enumerate::{ScoredHaplotype, TopK};
use ld_core::Evaluator;
use ld_data::SnpId;

/// Result of a beam search.
#[derive(Debug, Clone)]
pub struct BeamResult {
    /// Per-size retained haplotypes (best first), ascending size from 1.
    pub levels: Vec<Vec<ScoredHaplotype>>,
    /// Total evaluations spent.
    pub evaluations: u64,
}

impl BeamResult {
    /// Best haplotype of `size`, if that level was built.
    pub fn best_of_size(&self, size: usize) -> Option<&ScoredHaplotype> {
        self.levels.get(size.checked_sub(1)?)?.first()
    }
}

/// Greedy constructive search: level 1 scores every single SNP; level k
/// extends each of the best `beam_width` size-(k−1) haplotypes by every
/// unused SNP, keeping the best `beam_width` distinct results.
///
/// # Panics
/// Panics if `beam_width` is zero or `max_size` is zero.
pub fn beam_search<E: Evaluator>(evaluator: &E, max_size: usize, beam_width: usize) -> BeamResult {
    assert!(beam_width > 0, "beam width must be positive");
    assert!(max_size > 0, "max size must be positive");
    let n = evaluator.n_snps();
    let mut levels: Vec<Vec<ScoredHaplotype>> = Vec::with_capacity(max_size);
    let mut evaluations = 0u64;

    // Level 1: all singles.
    let mut level1 = TopK::new(beam_width);
    for s in 0..n {
        level1.offer(&[s], evaluator.evaluate_one(&[s]));
        evaluations += 1;
    }
    levels.push(level1.items().to_vec());

    for _k in 2..=max_size {
        let prev = levels.last().expect("previous level exists");
        let mut next = TopK::new(beam_width);
        let mut seen: std::collections::HashSet<Vec<SnpId>> = std::collections::HashSet::new();
        for parent in prev {
            for s in 0..n {
                if parent.snps.binary_search(&s).is_ok() {
                    continue;
                }
                let mut child = parent.snps.clone();
                let pos = child.partition_point(|&x| x < s);
                child.insert(pos, s);
                if !seen.insert(child.clone()) {
                    continue; // extension already scored via another parent
                }
                let fitness = evaluator.evaluate_one(&child);
                evaluations += 1;
                next.offer(&child, fitness);
            }
        }
        if next.is_empty() {
            break;
        }
        levels.push(next.items().to_vec());
    }
    BeamResult {
        levels,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::exhaustive_top_k;
    use ld_core::evaluator::{CountingEvaluator, FnEvaluator};

    #[test]
    fn beam_solves_monotone_objectives() {
        // Fitness = sum of ids: the optimum is built greedily, so even a
        // width-1 beam finds it at every size.
        let eval = FnEvaluator::new(12, |s: &[SnpId]| s.iter().map(|&x| x as f64).sum());
        let r = beam_search(&eval, 4, 1);
        assert_eq!(r.best_of_size(1).unwrap().snps, vec![11]);
        assert_eq!(r.best_of_size(4).unwrap().snps, vec![8, 9, 10, 11]);
    }

    #[test]
    fn beam_misses_deceptive_optima() {
        // Deceptive objective (the §3 situation): singles score by id, but
        // the best pair is {0, 1} — composed of the two *worst* singles.
        let eval = FnEvaluator::new(10, |s: &[SnpId]| match s {
            [0, 1] => 1000.0,
            _ => s.iter().map(|&x| x as f64).sum(),
        });
        let beam = beam_search(&eval, 2, 2);
        let exact = exhaustive_top_k(&eval, 2, 1);
        assert_eq!(exact.best().unwrap().snps, vec![0, 1]);
        // The beam kept singles {9} and {8}; neither extends to {0, 1}.
        assert_ne!(
            beam.best_of_size(2).unwrap().snps,
            exact.best().unwrap().snps,
            "beam unexpectedly found the deceptive optimum"
        );
        assert!(beam.best_of_size(2).unwrap().fitness < exact.best().unwrap().fitness);
    }

    #[test]
    fn wider_beam_recovers_more() {
        // With the full panel as beam width, level k is built from every
        // size-(k-1) haplotype extension of the beam... still not
        // exhaustive, but the deceptive pair IS found when the beam covers
        // all singles.
        let eval = FnEvaluator::new(10, |s: &[SnpId]| match s {
            [0, 1] => 1000.0,
            _ => s.iter().map(|&x| x as f64).sum(),
        });
        let beam = beam_search(&eval, 2, 10);
        assert_eq!(beam.best_of_size(2).unwrap().snps, vec![0, 1]);
    }

    #[test]
    fn evaluation_accounting_is_exact() {
        let eval = CountingEvaluator::new(FnEvaluator::new(8, |s: &[SnpId]| s.len() as f64));
        let r = beam_search(&eval, 3, 2);
        assert_eq!(r.evaluations, eval.count());
        // Level 1 = 8 singles; level 2 = 2 parents × 7 extensions minus
        // duplicates; level 3 similar.
        assert!(r.evaluations >= 8);
        assert_eq!(r.levels.len(), 3);
    }

    #[test]
    fn dedup_across_parents() {
        // Parents {0} and {1} both extend to {0,1}: scored once.
        let eval = CountingEvaluator::new(FnEvaluator::new(3, |s: &[SnpId]| {
            10.0 - s.iter().sum::<usize>() as f64
        }));
        let r = beam_search(&eval, 2, 2);
        // Level 1: 3 evals. Level 2 candidates from parents {0},{1}:
        // {0,1},{0,2},{1,2} -> 3 evals, not 4.
        assert_eq!(r.evaluations, 6);
    }

    #[test]
    fn saturated_panel_stops_early() {
        let eval = FnEvaluator::new(3, |s: &[SnpId]| s.len() as f64);
        let r = beam_search(&eval, 5, 2);
        // Only sizes 1..=3 exist on a 3-SNP panel.
        assert_eq!(r.levels.len(), 3);
        assert!(r.best_of_size(4).is_none());
    }

    #[test]
    #[should_panic(expected = "beam width")]
    fn zero_width_panics() {
        let eval = FnEvaluator::new(3, |_: &[SnpId]| 0.0);
        let _ = beam_search(&eval, 2, 0);
    }
}
