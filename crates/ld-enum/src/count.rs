//! Exact search-space counting — the paper's Table 1.

/// Exact binomial coefficient `C(n, k)` in `u128`; `None` on overflow.
pub fn choose_exact(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // Multiply then divide; the running product C(n, i+1) is always an
        // integer, and dividing by (i+1) right after multiplying by
        // (n - i) keeps intermediate values minimal.
        acc = acc.checked_mul((n - i) as u128)?;
        acc /= (i + 1) as u128;
    }
    Some(acc)
}

/// Binomial coefficient as `f64` (for the astronomically large entries of
/// Table 1, e.g. `C(249, 6) ≈ 3.11e11`).
pub fn choose_f64(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Total search space over haplotype sizes `min_k..=max_k` (f64; the paper's
/// problem is the union of all per-size spaces).
pub fn total_space_f64(n: u64, min_k: u64, max_k: u64) -> f64 {
    (min_k..=max_k).map(|k| choose_f64(n, k)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 1, exact column entries.
    #[test]
    fn table1_51_snps() {
        assert_eq!(choose_exact(51, 2), Some(1_275));
        assert_eq!(choose_exact(51, 3), Some(20_825));
        assert_eq!(choose_exact(51, 4), Some(249_900));
        assert_eq!(choose_exact(51, 5), Some(2_349_060));
        assert_eq!(choose_exact(51, 6), Some(18_009_460));
    }

    #[test]
    fn table1_150_snps() {
        assert_eq!(choose_exact(150, 2), Some(11_175));
        assert_eq!(choose_exact(150, 3), Some(551_300));
        assert_eq!(choose_exact(150, 4), Some(20_260_275));
        assert_eq!(choose_exact(150, 5), Some(591_600_030));
        // Paper prints "14.3e9" for k = 6.
        let c6 = choose_exact(150, 6).unwrap();
        assert!((c6 as f64 / 1e9 - 14.3).abs() < 0.05, "C(150,6) = {c6}");
    }

    #[test]
    fn table1_249_snps() {
        assert_eq!(choose_exact(249, 2), Some(30_876));
        assert_eq!(choose_exact(249, 3), Some(2_542_124));
        assert_eq!(choose_exact(249, 4), Some(156_340_626));
        // Paper prints "7.6e9" for k = 5 and "3.11e11" for k = 6.
        let c5 = choose_exact(249, 5).unwrap() as f64;
        assert!((c5 / 1e9 - 7.6).abs() < 0.1, "C(249,5) = {c5}");
        let c6 = choose_exact(249, 6).unwrap() as f64;
        assert!((c6 / 1e11 - 3.11).abs() < 0.05, "C(249,6) = {c6}");
    }

    #[test]
    fn boundary_cases() {
        assert_eq!(choose_exact(5, 0), Some(1));
        assert_eq!(choose_exact(5, 5), Some(1));
        assert_eq!(choose_exact(5, 6), Some(0));
        assert_eq!(choose_exact(0, 0), Some(1));
        assert_eq!(choose_f64(5, 6), 0.0);
    }

    #[test]
    fn f64_matches_exact_where_both_exist() {
        for n in [10u64, 51, 150] {
            for k in 0..=6 {
                let exact = choose_exact(n, k).unwrap() as f64;
                let approx = choose_f64(n, k);
                assert!(
                    (approx - exact).abs() / exact.max(1.0) < 1e-12,
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn symmetry() {
        assert_eq!(choose_exact(30, 7), choose_exact(30, 23));
    }

    #[test]
    fn total_space_sums_sizes() {
        let t = total_space_f64(51, 2, 6);
        let sum = 1_275.0 + 20_825.0 + 249_900.0 + 2_349_060.0 + 18_009_460.0;
        assert!((t - sum).abs() < 1.0);
    }

    #[test]
    fn overflow_returns_none() {
        assert_eq!(choose_exact(1000, 500), None);
    }
}
