//! Lexicographic k-subset iteration and combinatorial (un)ranking.
//!
//! The enumeration sweep wants two things:
//!
//! * a cheap successor function to walk subsets in lexicographic order
//!   without allocation ([`for_each_combination`], [`Combinations`]);
//! * random access by rank ([`unrank`]) so a rank interval `0..C(n,k)` can
//!   be split into chunks for data-parallel processing — each worker
//!   unranks its chunk start once, then walks successors.
//!
//! Ranks use the combinatorial number system: the rank of subset
//! `{c_1 < c_2 < … < c_k}` is `Σ_i C(c_i, i)`.

use crate::count::choose_exact;

/// Call `f` on every k-subset of `0..n` in lexicographic order. The slice
/// passed to `f` is a reused buffer — copy it if you need to keep it.
pub fn for_each_combination<F: FnMut(&[usize])>(n: usize, k: usize, mut f: F) {
    if k > n {
        return;
    }
    if k == 0 {
        f(&[]);
        return;
    }
    let mut c: Vec<usize> = (0..k).collect();
    loop {
        f(&c);
        if !next_combination(&mut c, n) {
            return;
        }
    }
}

/// Advance `c` to the lexicographic successor among k-subsets of `0..n`.
/// Returns `false` when `c` was the last subset.
pub fn next_combination(c: &mut [usize], n: usize) -> bool {
    let k = c.len();
    // Find the rightmost position that can be incremented.
    let mut i = k;
    while i > 0 {
        i -= 1;
        if c[i] < n - k + i {
            c[i] += 1;
            for j in i + 1..k {
                c[j] = c[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Rank of a subset in the lexicographic order of k-subsets of `0..n`.
pub fn rank(c: &[usize], n: usize) -> u128 {
    // Lexicographic rank: count subsets that precede c.
    let k = c.len();
    let mut r: u128 = 0;
    let mut prev = 0usize;
    for (i, &ci) in c.iter().enumerate() {
        for v in prev..ci {
            r += choose_exact((n - v - 1) as u64, (k - i - 1) as u64).expect("rank fits u128");
        }
        prev = ci + 1;
    }
    r
}

/// Subset of `0..n` at lexicographic `rank` among k-subsets.
///
/// # Panics
/// Panics when `rank ≥ C(n, k)`.
pub fn unrank(mut rank: u128, n: usize, k: usize) -> Vec<usize> {
    let total = choose_exact(n as u64, k as u64).expect("C(n,k) fits u128");
    assert!(
        rank < total.max(1),
        "rank {rank} out of range (C = {total})"
    );
    let mut out = Vec::with_capacity(k);
    let mut v = 0usize;
    for i in 0..k {
        loop {
            let with_v = choose_exact((n - v - 1) as u64, (k - i - 1) as u64).expect("fits u128");
            if rank < with_v {
                out.push(v);
                v += 1;
                break;
            }
            rank -= with_v;
            v += 1;
        }
    }
    out
}

/// Allocating iterator over k-subsets (convenience; the sweep uses the
/// visitor form).
pub struct Combinations {
    n: usize,
    state: Option<Vec<usize>>,
}

impl Combinations {
    /// All k-subsets of `0..n`, lexicographic.
    pub fn new(n: usize, k: usize) -> Self {
        let state = if k <= n { Some((0..k).collect()) } else { None };
        Combinations { n, state }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        let current = self.state.clone()?;
        let mut next = current.clone();
        if next.is_empty() || !next_combination(&mut next, self.n) {
            self.state = None;
        } else {
            self.state = Some(next);
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::choose_exact;

    #[test]
    fn visits_all_subsets_in_order() {
        let mut seen = Vec::new();
        for_each_combination(5, 3, |c| seen.push(c.to_vec()));
        assert_eq!(seen.len(), 10);
        assert_eq!(seen.first().unwrap(), &[0, 1, 2]);
        assert_eq!(seen.last().unwrap(), &[2, 3, 4]);
        // Strictly increasing lexicographic order, no duplicates.
        for w in seen.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn edge_cases() {
        let mut count = 0;
        for_each_combination(4, 0, |c| {
            assert!(c.is_empty());
            count += 1;
        });
        assert_eq!(count, 1);

        count = 0;
        for_each_combination(3, 5, |_| count += 1);
        assert_eq!(count, 0);

        count = 0;
        for_each_combination(4, 4, |c| {
            assert_eq!(c, &[0, 1, 2, 3]);
            count += 1;
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn iterator_matches_visitor() {
        let via_iter: Vec<Vec<usize>> = Combinations::new(6, 2).collect();
        let mut via_visit = Vec::new();
        for_each_combination(6, 2, |c| via_visit.push(c.to_vec()));
        assert_eq!(via_iter, via_visit);
        assert_eq!(via_iter.len(), 15);
    }

    #[test]
    fn rank_unrank_roundtrip() {
        let n = 9;
        let k = 4;
        let total = choose_exact(n as u64, k as u64).unwrap();
        let mut expected_rank: u128 = 0;
        for_each_combination(n, k, |c| {
            assert_eq!(rank(c, n), expected_rank);
            assert_eq!(unrank(expected_rank, n, k), c);
            expected_rank += 1;
        });
        assert_eq!(expected_rank, total);
    }

    #[test]
    fn unrank_then_walk_matches_full_enumeration() {
        // The parallel-chunking pattern: unrank a mid rank, walk successors.
        let n = 8;
        let k = 3;
        let all: Vec<Vec<usize>> = Combinations::new(n, k).collect();
        let start_rank = 17u128;
        let mut c = unrank(start_rank, n, k);
        for expect in &all[start_rank as usize..] {
            assert_eq!(&c, expect);
            if !next_combination(&mut c, n) {
                break;
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_out_of_range_panics() {
        let _ = unrank(10, 5, 5); // C(5,5) = 1
    }
}
