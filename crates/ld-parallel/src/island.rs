//! Coarse-grained island parallelism above the GA.
//!
//! The paper parallelizes the evaluation *phase*; a second, coarser axis —
//! natural on today's multicore hardware and hinted at by the paper's
//! multi-run experimental protocol (10 independent runs per configuration)
//! — is to run several GA instances ("islands") concurrently with
//! different seeds and merge their per-size champions. Each island is a
//! full adaptive multi-population GA; islands share the (read-only)
//! objective but nothing else, so they scale embarrassingly.

use ld_core::{Evaluator, GaConfig, GaEngine, GaRun, Haplotype, RunResult};
use std::sync::Mutex;

/// Island-run configuration.
#[derive(Debug, Clone)]
pub struct IslandConfig {
    /// Number of concurrent islands.
    pub n_islands: usize,
    /// Base seed; island `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// GA configuration shared by every island.
    pub ga: GaConfig,
}

/// Merged result of an island run.
#[derive(Debug)]
pub struct IslandResult {
    /// Per-island raw results (index = island id).
    pub islands: Vec<RunResult>,
    /// Best individual per size over all islands (ascending sizes).
    pub best_per_size: Vec<Option<Haplotype>>,
    /// Smallest managed size.
    pub min_size: usize,
    /// Total evaluations across islands.
    pub total_evaluations: u64,
}

impl IslandResult {
    /// Best individual of size `k` across every island.
    pub fn best_of_size(&self, k: usize) -> Option<&Haplotype> {
        k.checked_sub(self.min_size)
            .and_then(|i| self.best_per_size.get(i))
            .and_then(|o| o.as_ref())
    }
}

/// Run `cfg.n_islands` GA instances concurrently over a shared objective
/// and merge their champions.
pub fn run_islands<E: Evaluator>(evaluator: &E, cfg: &IslandConfig) -> IslandResult {
    assert!(cfg.n_islands > 0, "need at least one island");
    cfg.ga
        .validate(evaluator.n_snps())
        .expect("island GA configuration must be valid");

    let results: Mutex<Vec<(usize, RunResult)>> = Mutex::new(Vec::with_capacity(cfg.n_islands));
    std::thread::scope(|scope| {
        for island in 0..cfg.n_islands {
            let results = &results;
            let ga = cfg.ga.clone();
            let seed = cfg.base_seed + island as u64;
            scope.spawn(move || {
                let run = GaEngine::new(evaluator, ga, seed)
                    .expect("validated configuration")
                    .run();
                results
                    .lock()
                    .expect("no poisoned lock")
                    .push((island, run));
            });
        }
    });
    let mut islands: Vec<(usize, RunResult)> = results.into_inner().expect("threads joined");
    islands.sort_by_key(|(i, _)| *i);
    let islands: Vec<RunResult> = islands.into_iter().map(|(_, r)| r).collect();

    let min_size = cfg.ga.min_size;
    let n_sizes = cfg.ga.max_size - min_size + 1;
    let mut best_per_size: Vec<Option<Haplotype>> = vec![None; n_sizes];
    for run in &islands {
        for (i, best) in run.best_per_size.iter().enumerate() {
            let Some(best) = best else { continue };
            let slot = &mut best_per_size[i];
            if slot
                .as_ref()
                .is_none_or(|cur| best.fitness() > cur.fitness())
            {
                *slot = Some(best.clone());
            }
        }
    }
    let total_evaluations = islands.iter().map(|r| r.total_evaluations).sum();
    IslandResult {
        islands,
        best_per_size,
        min_size,
        total_evaluations,
    }
}

/// Ring-migration configuration.
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Number of islands in the ring.
    pub n_islands: usize,
    /// Base seed; island `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Generations each island evolves between migration rounds (the
    /// migration *epoch*).
    pub epoch_generations: usize,
    /// Maximum migration rounds.
    pub max_rounds: usize,
    /// GA configuration shared by every island.
    pub ga: GaConfig,
}

/// Run a **ring-migration island model**: islands evolve concurrently for
/// an epoch, then each island's per-size champions migrate to the next
/// island in the ring, repeating until every island is stagnated or the
/// round cap is reached.
///
/// Unlike [`run_islands`] (independent multi-start), migration lets a
/// discovery on one island propagate: champions injected into a neighbour
/// go through the normal replacement rule and, via inter-population
/// crossover and size mutations, seed improvements at *other* sizes too.
/// Rounds are synchronous — the same structure as the paper's synchronous
/// master/slaves evaluation, one level up.
pub fn run_ring_migration<E: Evaluator>(evaluator: &E, cfg: &RingConfig) -> IslandResult {
    assert!(cfg.n_islands > 0, "need at least one island");
    assert!(
        cfg.epoch_generations > 0,
        "epoch must be at least 1 generation"
    );
    cfg.ga
        .validate(evaluator.n_snps())
        .expect("island GA configuration must be valid");

    // Initialize all runs (cheap relative to evolution; sequential keeps
    // seeding deterministic).
    let mut runs: Vec<GaRun<'_, E>> = (0..cfg.n_islands)
        .map(|i| {
            GaRun::new(evaluator, cfg.ga.clone(), cfg.base_seed + i as u64, None)
                .expect("validated configuration")
        })
        .collect();

    for _round in 0..cfg.max_rounds {
        // Epoch: evolve each island concurrently.
        std::thread::scope(|scope| {
            for run in runs.iter_mut() {
                let epoch = cfg.epoch_generations;
                scope.spawn(move || {
                    for _ in 0..epoch {
                        if run.step() == ld_core::StepOutcome::GenerationCapReached {
                            break;
                        }
                    }
                });
            }
        });
        if runs.iter().all(|r| r.is_stagnated()) {
            break;
        }
        // Migration: champions of island i go to island (i + 1) mod K.
        let emigrants: Vec<Vec<Haplotype>> = runs
            .iter()
            .map(|r| r.champions().into_iter().flatten().collect())
            .collect();
        let k = runs.len();
        for (i, migrants) in emigrants.into_iter().enumerate() {
            runs[(i + 1) % k].inject(migrants);
        }
    }

    let islands: Vec<RunResult> = runs.into_iter().map(|r| r.finish()).collect();
    let min_size = cfg.ga.min_size;
    let n_sizes = cfg.ga.max_size - min_size + 1;
    let mut best_per_size: Vec<Option<Haplotype>> = vec![None; n_sizes];
    for run in &islands {
        for (i, best) in run.best_per_size.iter().enumerate() {
            let Some(best) = best else { continue };
            let slot = &mut best_per_size[i];
            if slot
                .as_ref()
                .is_none_or(|cur| best.fitness() > cur.fitness())
            {
                *slot = Some(best.clone());
            }
        }
    }
    let total_evaluations = islands.iter().map(|r| r.total_evaluations).sum();
    IslandResult {
        islands,
        best_per_size,
        min_size,
        total_evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::evaluator::FnEvaluator;
    use ld_data::SnpId;

    fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        FnEvaluator::new(30, |s: &[SnpId]| {
            s.iter().map(|&x| x as f64).sum::<f64>() + 10.0 * s.len() as f64
        })
    }

    fn cfg(n_islands: usize) -> IslandConfig {
        IslandConfig {
            n_islands,
            base_seed: 50,
            ga: GaConfig {
                population_size: 40,
                min_size: 2,
                max_size: 3,
                matings_per_generation: 6,
                stagnation_limit: 12,
                max_generations: 150,
                ..GaConfig::default()
            },
        }
    }

    #[test]
    fn islands_run_and_merge() {
        let eval = toy();
        let r = run_islands(&eval, &cfg(4));
        assert_eq!(r.islands.len(), 4);
        // Merged champion is at least as good as every island's champion.
        let merged = r.best_of_size(3).unwrap().fitness();
        for island in &r.islands {
            assert!(merged >= island.best_of_size(3).unwrap().fitness());
        }
        assert_eq!(
            r.total_evaluations,
            r.islands.iter().map(|i| i.total_evaluations).sum::<u64>()
        );
        // With 4 islands on this easy objective, the optimum is found.
        assert_eq!(r.best_of_size(3).unwrap().snps(), &[27, 28, 29]);
    }

    #[test]
    fn island_results_are_seed_deterministic() {
        let eval = toy();
        let a = run_islands(&eval, &cfg(3));
        let b = run_islands(&eval, &cfg(3));
        for (x, y) in a.islands.iter().zip(&b.islands) {
            assert_eq!(x.total_evaluations, y.total_evaluations);
            assert_eq!(x.seed, y.seed);
        }
        // Island i of run A equals a solo run with the same seed.
        let solo = GaEngine::new(&eval, cfg(3).ga, 51).unwrap().run();
        assert_eq!(a.islands[1].total_evaluations, solo.total_evaluations);
    }

    #[test]
    #[should_panic(expected = "at least one island")]
    fn zero_islands_rejected() {
        let eval = toy();
        let _ = run_islands(&eval, &cfg(0));
    }

    fn ring_cfg(n: usize) -> RingConfig {
        RingConfig {
            n_islands: n,
            base_seed: 70,
            epoch_generations: 5,
            max_rounds: 20,
            ga: cfg(1).ga,
        }
    }

    #[test]
    fn ring_migration_finds_optimum_and_merges() {
        let eval = toy();
        let r = run_ring_migration(&eval, &ring_cfg(3));
        assert_eq!(r.islands.len(), 3);
        assert_eq!(r.best_of_size(3).unwrap().snps(), &[27, 28, 29]);
        // Merged >= each island.
        for island in &r.islands {
            assert!(
                r.best_of_size(2).unwrap().fitness() >= island.best_of_size(2).unwrap().fitness()
            );
        }
    }

    #[test]
    fn ring_migration_is_deterministic() {
        let eval = toy();
        let a = run_ring_migration(&eval, &ring_cfg(3));
        let b = run_ring_migration(&eval, &ring_cfg(3));
        assert_eq!(a.total_evaluations, b.total_evaluations);
        assert_eq!(
            a.best_of_size(3).unwrap().snps(),
            b.best_of_size(3).unwrap().snps()
        );
    }

    #[test]
    fn migration_propagates_a_needle_between_islands() {
        // Only one haplotype scores: a flat-landscape needle. With
        // independent islands, an island that misses the needle keeps its
        // flat champion; with ring migration every island ends up holding
        // the needle once any island finds it.
        let eval = FnEvaluator::new(12, |s: &[SnpId]| if s == [3, 7] { 100.0 } else { 1.0 });
        let cfg = RingConfig {
            n_islands: 4,
            base_seed: 0,
            epoch_generations: 4,
            max_rounds: 40,
            ga: GaConfig {
                population_size: 30,
                min_size: 2,
                max_size: 2,
                matings_per_generation: 4,
                stagnation_limit: 10,
                ri_stagnation: 4,
                max_generations: 200,
                ..GaConfig::default()
            },
        };
        let r = run_ring_migration(&eval, &cfg);
        // C(12,2) = 66 pairs; 4 islands × 30 initial individuals make it
        // overwhelmingly likely some island holds the needle from the
        // start; migration must spread it to every island's champion set.
        let holders = r
            .islands
            .iter()
            .filter(|i| i.best_of_size(2).is_some_and(|h| h.snps() == [3, 7]))
            .count();
        assert!(
            holders >= 2,
            "needle propagated to only {holders} of 4 islands"
        );
        assert_eq!(r.best_of_size(2).unwrap().snps(), &[3, 7]);
    }

    #[test]
    #[should_panic(expected = "epoch must be")]
    fn zero_epoch_rejected() {
        let eval = toy();
        let mut c = ring_cfg(2);
        c.epoch_generations = 0;
        let _ = run_ring_migration(&eval, &c);
    }
}
