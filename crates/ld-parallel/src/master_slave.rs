//! Synchronous master/slaves evaluation (paper §4.5, Figure 6).
//!
//! ```text
//!                 ┌────────── Master ──────────┐
//!                 │ Selection Mutation Crossover│
//!                 └──────┬──────────────▲──────┘
//!        solution to     │              │   evaluated
//!        evaluate        ▼              │   solution
//!              ┌──────────────┐  ┌──────────────┐
//!              │   Slave 1    │…│    Slave n    │
//!              │ Evaluation   │  │  Evaluation  │
//!              └──────────────┘  └──────────────┘
//! ```
//!
//! Slaves are OS threads spawned at construction; each holds an `Arc` to
//! the objective, mirroring the paper's "slaves … access only once to the
//! data". A batch evaluation is one synchronous phase: the master deals
//! every individual onto an unbounded channel, slaves race to pull work,
//! and the master blocks until all `(index, fitness)` results are back.

use crossbeam::channel::{unbounded, Receiver, Sender};
use ld_core::{EvalBackend, EvalBackendError, Evaluator, Haplotype};
use ld_data::SnpId;
use ld_observe::span::names as span_names;
use ld_observe::Observer;
use std::sync::Arc;
use std::sync::OnceLock;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One unit of work for a slave.
struct Job {
    index: usize,
    snps: Vec<SnpId>,
}

/// A completed evaluation.
struct JobResult {
    index: usize,
    fitness: f64,
    /// Wall nanoseconds the slave spent in the objective (the in-process
    /// analogue of protocol v2's slave-reported compute time).
    compute_ns: u64,
}

/// Master/slaves evaluator wrapping an inner objective.
pub struct MasterSlaveEvaluator<E: Evaluator + 'static> {
    inner: Arc<E>,
    job_tx: Sender<Job>,
    result_rx: Receiver<JobResult>,
    workers: Vec<JoinHandle<()>>,
    n_workers: usize,
    /// Attached observability handle; when set, every dispatch records a
    /// summed `compute` span under the scheduler's dispatch span.
    observer: OnceLock<Observer>,
}

impl<E: Evaluator + 'static> MasterSlaveEvaluator<E> {
    /// Spawn `n_workers` slave threads over the shared objective.
    ///
    /// # Panics
    /// Panics if `n_workers` is zero.
    pub fn new(inner: E, n_workers: usize) -> Self {
        assert!(n_workers > 0, "need at least one slave");
        let inner = Arc::new(inner);
        let (job_tx, job_rx) = unbounded::<Job>();
        let (result_tx, result_rx) = unbounded::<JobResult>();
        let workers = (0..n_workers)
            .map(|i| {
                let rx = job_rx.clone();
                let tx = result_tx.clone();
                let objective = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ga-slave-{i}"))
                    .spawn(move || {
                        // One warmed evaluation workspace per slave, alive
                        // for the thread's lifetime.
                        let mut scratch = ld_core::EvalScratch::new();
                        // The slave loop: pull work until the master hangs up.
                        while let Ok(job) = rx.recv() {
                            let started = Instant::now();
                            let fitness = objective.evaluate_one_with(&mut scratch, &job.snps);
                            if tx
                                .send(JobResult {
                                    index: job.index,
                                    fitness,
                                    compute_ns: started.elapsed().as_nanos() as u64,
                                })
                                .is_err()
                            {
                                break; // master gone
                            }
                        }
                    })
                    .expect("spawn slave thread")
            })
            .collect();
        MasterSlaveEvaluator {
            inner,
            job_tx,
            result_rx,
            workers,
            n_workers,
            observer: OnceLock::new(),
        }
    }

    /// Attach an [`Observer`]: each dispatch then records the summed
    /// per-job compute wall time as a `compute` span, so latency
    /// attribution sees this backend too. First call wins.
    pub fn set_observer(&self, observer: Observer) {
        let _ = self.observer.set(observer);
    }

    /// Number of slave threads.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// The shared objective.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: Evaluator + 'static> EvalBackend for MasterSlaveEvaluator<E> {
    fn n_snps(&self) -> usize {
        self.inner.n_snps()
    }

    fn dispatch(&self, batch: &mut [Haplotype]) -> Result<(), EvalBackendError> {
        if batch.is_empty() {
            return Ok(());
        }
        // Deal all jobs, then synchronously collect all results. The
        // channels only close when every slave thread has died, so a send
        // or recv failure means the whole pool is gone.
        for (index, h) in batch.iter().enumerate() {
            self.job_tx
                .send(Job {
                    index,
                    snps: h.snps().to_vec(),
                })
                .map_err(|_| EvalBackendError::Backend("slave thread pool disconnected".into()))?;
        }
        let mut compute_ns: u64 = 0;
        for done in 0..batch.len() {
            let JobResult {
                index,
                fitness,
                compute_ns: job_ns,
            } = self
                .result_rx
                .recv()
                .map_err(|_| EvalBackendError::AllWorkersFailed {
                    outstanding: batch.len() - done,
                    total: batch.len(),
                })?;
            compute_ns += job_ns;
            batch[index].set_fitness(fitness);
        }
        if let Some(obs) = self.observer.get().filter(|o| o.enabled()) {
            // Summed worker wall time (may exceed the dispatch wall on
            // multi-core runs; attribution normalizes).
            obs.record_span(
                span_names::COMPUTE,
                obs.dispatch_span(),
                Duration::from_nanos(compute_ns),
            );
        }
        Ok(())
    }

    fn queue_depth(&self) -> usize {
        self.job_tx.len()
    }

    fn backend_name(&self) -> &'static str {
        "master-slave"
    }
}

impl<E: Evaluator + 'static> Evaluator for MasterSlaveEvaluator<E> {
    fn n_snps(&self) -> usize {
        self.inner.n_snps()
    }

    fn evaluate_one(&self, snps: &[SnpId]) -> f64 {
        // A single evaluation gains nothing from the channel round-trip;
        // the master computes it directly (the paper's master also handles
        // the serial parts of the algorithm).
        self.inner.evaluate_one(snps)
    }

    fn evaluate_batch(&self, batch: &mut [Haplotype]) {
        self.dispatch(batch).expect("slave thread pool alive");
    }

    fn try_evaluate_batch(&self, batch: &mut [Haplotype]) -> Result<(), EvalBackendError> {
        self.dispatch(batch)
    }
}

impl<E: Evaluator + 'static> Drop for MasterSlaveEvaluator<E> {
    fn drop(&mut self) {
        // Replace the sender so slaves see a closed channel and exit.
        let (tx, _rx) = unbounded();
        self.job_tx = tx;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::evaluator::{CountingEvaluator, FnEvaluator};
    use ld_core::{GaConfig, GaEngine, StatsEvaluator};
    use ld_data::synthetic::lille_51;
    use ld_stats::FitnessKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        FnEvaluator::new(51, |s: &[SnpId]| s.iter().sum::<usize>() as f64)
    }

    #[test]
    fn batch_results_match_sequential() {
        let seq = toy();
        let par = MasterSlaveEvaluator::new(toy(), 4);
        let mut batch_a: Vec<Haplotype> = (0..100)
            .map(|i| Haplotype::new(vec![i % 51, (i * 7 + 1) % 51, (i * 13 + 2) % 51]))
            .collect();
        let mut batch_b = batch_a.clone();
        seq.evaluate_batch(&mut batch_a);
        par.evaluate_batch(&mut batch_b);
        for (a, b) in batch_a.iter().zip(&batch_b) {
            assert_eq!(a.fitness(), b.fitness(), "{a} vs {b}");
        }
    }

    #[test]
    fn results_land_on_correct_indices() {
        // A fitness that identifies the individual: its first SNP.
        let par = MasterSlaveEvaluator::new(FnEvaluator::new(100, |s: &[SnpId]| s[0] as f64), 3);
        let mut batch: Vec<Haplotype> = (0..50).map(|i| Haplotype::new(vec![i, i + 50])).collect();
        par.evaluate_batch(&mut batch);
        for (i, h) in batch.iter().enumerate() {
            assert_eq!(h.fitness(), i as f64);
        }
    }

    #[test]
    fn all_workers_participate() {
        // Count distinct threads that actually evaluated something.
        static SEEN: AtomicUsize = AtomicUsize::new(0);
        let eval = FnEvaluator::new(10, |_: &[SnpId]| {
            // Make work slow enough that one worker cannot drain the queue.
            std::thread::sleep(std::time::Duration::from_millis(2));
            SEEN.fetch_add(1, Ordering::Relaxed);
            1.0
        });
        let par = MasterSlaveEvaluator::new(eval, 4);
        let mut batch: Vec<Haplotype> = (0..40).map(|i| Haplotype::new(vec![i % 10])).collect();
        let t0 = std::time::Instant::now();
        par.evaluate_batch(&mut batch);
        let elapsed = t0.elapsed();
        assert_eq!(SEEN.load(Ordering::Relaxed), 40);
        // 40 jobs × 2 ms on 4 workers ≈ 20 ms; sequential would be 80 ms.
        // Generous bound to avoid CI flakiness while still proving overlap.
        assert!(
            elapsed < std::time::Duration::from_millis(70),
            "batch took {elapsed:?}, workers likely not parallel"
        );
    }

    #[test]
    fn empty_batch_is_noop() {
        let par = MasterSlaveEvaluator::new(toy(), 2);
        let mut batch: Vec<Haplotype> = Vec::new();
        par.evaluate_batch(&mut batch);
    }

    #[test]
    fn counting_wraps_cleanly() {
        let par = MasterSlaveEvaluator::new(CountingEvaluator::new(toy()), 2);
        let mut batch = vec![Haplotype::new(vec![1, 2]); 8];
        par.evaluate_batch(&mut batch);
        assert_eq!(par.inner().count(), 8);
        let _ = par.evaluate_one(&[3, 4]);
        assert_eq!(par.inner().count(), 9);
    }

    #[test]
    fn backend_trait_exposes_queue_and_name() {
        let par = MasterSlaveEvaluator::new(toy(), 2);
        assert_eq!(EvalBackend::n_snps(&par), 51);
        assert_eq!(par.backend_name(), "master-slave");
        // Synchronous dispatch drains the queue before returning.
        let mut batch = vec![Haplotype::new(vec![7, 8])];
        par.dispatch(&mut batch).unwrap();
        assert_eq!(batch[0].fitness(), 15.0);
        assert_eq!(par.queue_depth(), 0);
    }

    #[test]
    fn drop_shuts_down_workers() {
        let par = MasterSlaveEvaluator::new(toy(), 3);
        let mut batch = vec![Haplotype::new(vec![5, 6])];
        par.evaluate_batch(&mut batch);
        drop(par); // must not hang
    }

    #[test]
    fn ga_engine_runs_on_master_slave_evaluator() {
        // End-to-end: the paper's architecture — adaptive GA with a
        // master/slaves evaluation phase on the synthetic Lille data.
        let data = lille_51(42);
        let stats = StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap();
        let par = MasterSlaveEvaluator::new(stats, 4);
        let cfg = GaConfig {
            population_size: 60,
            min_size: 2,
            max_size: 4,
            matings_per_generation: 8,
            stagnation_limit: 10,
            max_generations: 40,
            ..GaConfig::default()
        };
        let result = GaEngine::new(&par, cfg, 1).unwrap().run();
        let best3 = result.best_of_size(3).expect("size-3 best");
        assert!(best3.fitness() > 0.0);
        assert!(result.total_evaluations > 100);
    }

    #[test]
    fn parallel_engine_run_matches_sequential_run() {
        // Determinism: the engine RNG drives all randomness; evaluation is
        // pure, so a parallel evaluator must yield the identical trajectory.
        let cfg = GaConfig {
            population_size: 40,
            min_size: 2,
            max_size: 3,
            matings_per_generation: 6,
            stagnation_limit: 8,
            max_generations: 60,
            ..GaConfig::default()
        };
        let seq_eval = toy();
        let r_seq = GaEngine::new(&seq_eval, cfg.clone(), 5).unwrap().run();
        let par_eval = MasterSlaveEvaluator::new(toy(), 4);
        let r_par = GaEngine::new(&par_eval, cfg, 5).unwrap().run();
        assert_eq!(r_seq.total_evaluations, r_par.total_evaluations);
        assert_eq!(r_seq.generations, r_par.generations);
        assert_eq!(
            r_seq.best_of_size(3).unwrap().snps(),
            r_par.best_of_size(3).unwrap().snps()
        );
    }
}
