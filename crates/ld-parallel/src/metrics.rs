//! Evaluation timing instrumentation.
//!
//! The paper's Figure 4 plots the average evaluation time against haplotype
//! size; [`TimingEvaluator`] collects exactly that: per-size evaluation
//! counts and cumulative wall time, with negligible overhead (two relaxed
//! atomic adds per call). The accumulator itself is the shared
//! [`ld_observe::SizeTimingBank`] — the same per-size fold the rest of the
//! observability plane uses — so there is exactly one timing mechanism;
//! this wrapper only owns the clock and the bucket-by-haplotype-size
//! policy, and keeps the `ld_parallel_*` metric names stable.

use ld_core::Evaluator;
use ld_data::SnpId;
use ld_observe::SizeTimingBank;
use std::time::Instant;

// Path compatibility: these lived here before moving to `ld-observe`.
pub use ld_observe::{SizeTiming, MAX_TRACKED_SIZE};

/// Evaluator wrapper recording per-size evaluation timings.
#[derive(Debug)]
pub struct TimingEvaluator<E> {
    inner: E,
    bank: SizeTimingBank,
}

impl<E: Evaluator> TimingEvaluator<E> {
    /// Wrap `inner` with zeroed timers.
    pub fn new(inner: E) -> Self {
        TimingEvaluator {
            inner,
            bank: SizeTimingBank::new(),
        }
    }

    /// The wrapped objective.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The shared timing bank behind this wrapper (e.g. to hand the same
    /// fold to another recording layer).
    pub fn bank(&self) -> &SizeTimingBank {
        &self.bank
    }

    /// Timing summary for every size that was evaluated at least once.
    /// The overflow bucket (sizes above [`MAX_TRACKED_SIZE`]), if hit, is
    /// the final entry with [`SizeTiming::pooled`] set — kept distinct so
    /// it cannot be mistaken for exact size-`MAX_TRACKED_SIZE` samples.
    pub fn timings(&self) -> Vec<SizeTiming> {
        self.bank.timings()
    }

    /// Mean evaluation time for one size, if measured. Sizes above
    /// [`MAX_TRACKED_SIZE`] read the pooled bucket.
    pub fn mean_ns_for_size(&self, size: usize) -> Option<f64> {
        self.bank.mean_ns_for_size(size)
    }

    /// Publish the current timings into an `ld-observe` [`Registry`]:
    /// one labelled counter of evaluations and one gauge of the mean per
    /// size (`size="33+"` for the pooled bucket). Safe to call repeatedly
    /// (e.g. from a periodic flusher); series are registered idempotently
    /// and counters add only the delta since the last publish.
    ///
    /// [`Registry`]: ld_observe::Registry
    pub fn publish(&self, registry: &ld_observe::Registry) {
        self.bank.publish_into(
            registry,
            "ld_parallel_evals_total",
            "Evaluations timed, per haplotype size",
            "ld_parallel_eval_mean_ns",
            "Mean evaluation wall time per haplotype size (ns)",
        );
    }

    /// Reset all timers.
    pub fn reset(&self) {
        self.bank.reset();
    }
}

impl<E: Evaluator> Evaluator for TimingEvaluator<E> {
    fn n_snps(&self) -> usize {
        self.inner.n_snps()
    }

    fn evaluate_one(&self, snps: &[SnpId]) -> f64 {
        let start = Instant::now();
        let f = self.inner.evaluate_one(snps);
        self.bank
            .record(snps.len(), start.elapsed().as_nanos() as u64);
        f
    }
    // evaluate_batch intentionally inherits the default sequential loop so
    // each call is timed individually; wrap a TimingEvaluator *inside* a
    // parallel evaluator (which calls evaluate_one per job) to time
    // parallel runs.
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::evaluator::FnEvaluator;
    use ld_core::Haplotype;

    fn slow_by_size() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        FnEvaluator::new(51, |s: &[SnpId]| {
            std::thread::sleep(std::time::Duration::from_micros(50 * s.len() as u64));
            s.len() as f64
        })
    }

    #[test]
    fn records_per_size_counts_and_means() {
        // A widely separated sleep (1 ms per SNP) keeps the ordering
        // assertion robust against scheduler jitter on loaded CI hosts.
        let t = TimingEvaluator::new(FnEvaluator::new(51, |s: &[SnpId]| {
            std::thread::sleep(std::time::Duration::from_millis(s.len() as u64));
            s.len() as f64
        }));
        for _ in 0..3 {
            let _ = t.evaluate_one(&[1, 2]);
        }
        let _ = t.evaluate_one(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let timings = t.timings();
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[0].size, 2);
        assert_eq!(timings[0].count, 3);
        assert_eq!(timings[1].size, 8);
        assert_eq!(timings[1].count, 1);
        // Size 8 sleeps 4x as long as size 2; even heavy jitter cannot
        // close a 6 ms gap.
        assert!(
            timings[1].mean_ns > timings[0].mean_ns,
            "8-SNP mean {} <= 2-SNP mean {}",
            timings[1].mean_ns,
            timings[0].mean_ns
        );
        assert!(t.mean_ns_for_size(2).unwrap() > 0.0);
        assert!(t.mean_ns_for_size(7).is_none());
    }

    #[test]
    fn batch_goes_through_timed_path() {
        let t = TimingEvaluator::new(slow_by_size());
        let mut batch = vec![Haplotype::new(vec![1, 2, 3]); 4];
        t.evaluate_batch(&mut batch);
        assert_eq!(t.timings()[0].count, 4);
        assert_eq!(batch[0].fitness(), 3.0);
    }

    #[test]
    fn reset_clears_state() {
        let t = TimingEvaluator::new(slow_by_size());
        let _ = t.evaluate_one(&[1]);
        assert!(!t.timings().is_empty());
        t.reset();
        assert!(t.timings().is_empty());
    }

    #[test]
    fn oversized_haplotypes_pool_into_last_bucket() {
        let t = TimingEvaluator::new(FnEvaluator::new(100, |_: &[SnpId]| 0.0));
        let wide: Vec<usize> = (0..40).collect();
        let _ = t.evaluate_one(&wide);
        let entry = t.timings()[0];
        assert_eq!(entry.size, MAX_TRACKED_SIZE);
        assert!(entry.pooled, "oversize samples must be marked pooled");
    }

    /// Regression: the pooled bucket must stay distinct from exact
    /// size-`MAX_TRACKED_SIZE` samples — they report separately in
    /// `timings()`, and oversize lookups read the pooled bucket without
    /// contaminating the exact one.
    #[test]
    fn pooled_bucket_is_distinct_from_exact_max_size() {
        let t = TimingEvaluator::new(FnEvaluator::new(100, |_: &[SnpId]| 0.0));
        let exact: Vec<usize> = (0..MAX_TRACKED_SIZE).collect();
        let over_a: Vec<usize> = (0..MAX_TRACKED_SIZE + 1).collect();
        let over_b: Vec<usize> = (0..MAX_TRACKED_SIZE + 20).collect();
        let _ = t.evaluate_one(&exact);
        let _ = t.evaluate_one(&over_a);
        let _ = t.evaluate_one(&over_b);

        let timings = t.timings();
        assert_eq!(timings.len(), 2, "{timings:?}");
        let (exact_entry, pooled_entry) = (timings[0], timings[1]);
        assert_eq!(exact_entry.size, MAX_TRACKED_SIZE);
        assert!(!exact_entry.pooled);
        assert_eq!(exact_entry.count, 1, "exact bucket untouched by overflow");
        assert_eq!(pooled_entry.size, MAX_TRACKED_SIZE);
        assert!(pooled_entry.pooled);
        assert_eq!(pooled_entry.count, 2, "all oversize samples pool together");
        // Oversize lookups resolve to the pooled bucket, whatever the size.
        assert_eq!(
            t.mean_ns_for_size(MAX_TRACKED_SIZE + 1),
            t.mean_ns_for_size(MAX_TRACKED_SIZE + 500),
        );
    }

    #[test]
    fn publish_feeds_the_registry_with_per_size_series() {
        let t = TimingEvaluator::new(FnEvaluator::new(100, |_: &[SnpId]| 0.0));
        let _ = t.evaluate_one(&[1, 2]);
        let _ = t.evaluate_one(&[1, 2]);
        let wide: Vec<usize> = (0..40).collect();
        let _ = t.evaluate_one(&wide);

        let registry = ld_observe::Registry::new();
        t.publish(&registry);
        t.publish(&registry); // idempotent: counters must not double
        let text = registry.prometheus();
        assert!(
            text.contains("ld_parallel_evals_total{size=\"2\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("ld_parallel_evals_total{size=\"33+\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ld_parallel_eval_mean_ns{size=\"2\"}"),
            "{text}"
        );
    }
}
