//! Evaluation timing instrumentation.
//!
//! The paper's Figure 4 plots the average evaluation time against haplotype
//! size; [`TimingEvaluator`] collects exactly that: per-size evaluation
//! counts and cumulative wall time, with negligible overhead (two relaxed
//! atomic adds per call).

use ld_core::Evaluator;
use ld_data::SnpId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Widest haplotype size tracked individually; larger sizes pool into the
/// last bucket.
const MAX_TRACKED_SIZE: usize = 32;

/// Per-size timing statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeTiming {
    /// Haplotype size.
    pub size: usize,
    /// Evaluations performed at this size.
    pub count: u64,
    /// Mean evaluation time in nanoseconds.
    pub mean_ns: f64,
}

/// Evaluator wrapper recording per-size evaluation timings.
#[derive(Debug)]
pub struct TimingEvaluator<E> {
    inner: E,
    counts: Vec<AtomicU64>,
    total_ns: Vec<AtomicU64>,
}

impl<E: Evaluator> TimingEvaluator<E> {
    /// Wrap `inner` with zeroed timers.
    pub fn new(inner: E) -> Self {
        TimingEvaluator {
            inner,
            counts: (0..=MAX_TRACKED_SIZE).map(|_| AtomicU64::new(0)).collect(),
            total_ns: (0..=MAX_TRACKED_SIZE).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The wrapped objective.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Timing summary for every size that was evaluated at least once.
    pub fn timings(&self) -> Vec<SizeTiming> {
        (0..=MAX_TRACKED_SIZE)
            .filter_map(|size| {
                let count = self.counts[size].load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                let total = self.total_ns[size].load(Ordering::Relaxed);
                Some(SizeTiming {
                    size,
                    count,
                    mean_ns: total as f64 / count as f64,
                })
            })
            .collect()
    }

    /// Mean evaluation time for one size, if measured.
    pub fn mean_ns_for_size(&self, size: usize) -> Option<f64> {
        let bucket = size.min(MAX_TRACKED_SIZE);
        let count = self.counts[bucket].load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        Some(self.total_ns[bucket].load(Ordering::Relaxed) as f64 / count as f64)
    }

    /// Reset all timers.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        for t in &self.total_ns {
            t.store(0, Ordering::Relaxed);
        }
    }
}

impl<E: Evaluator> Evaluator for TimingEvaluator<E> {
    fn n_snps(&self) -> usize {
        self.inner.n_snps()
    }

    fn evaluate_one(&self, snps: &[SnpId]) -> f64 {
        let start = Instant::now();
        let f = self.inner.evaluate_one(snps);
        let ns = start.elapsed().as_nanos() as u64;
        let bucket = snps.len().min(MAX_TRACKED_SIZE);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_ns[bucket].fetch_add(ns, Ordering::Relaxed);
        f
    }
    // evaluate_batch intentionally inherits the default sequential loop so
    // each call is timed individually; wrap a TimingEvaluator *inside* a
    // parallel evaluator (which calls evaluate_one per job) to time
    // parallel runs.
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::evaluator::FnEvaluator;
    use ld_core::Haplotype;

    fn slow_by_size() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        FnEvaluator::new(51, |s: &[SnpId]| {
            std::thread::sleep(std::time::Duration::from_micros(50 * s.len() as u64));
            s.len() as f64
        })
    }

    #[test]
    fn records_per_size_counts_and_means() {
        // A widely separated sleep (1 ms per SNP) keeps the ordering
        // assertion robust against scheduler jitter on loaded CI hosts.
        let t = TimingEvaluator::new(FnEvaluator::new(51, |s: &[SnpId]| {
            std::thread::sleep(std::time::Duration::from_millis(s.len() as u64));
            s.len() as f64
        }));
        for _ in 0..3 {
            let _ = t.evaluate_one(&[1, 2]);
        }
        let _ = t.evaluate_one(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let timings = t.timings();
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[0].size, 2);
        assert_eq!(timings[0].count, 3);
        assert_eq!(timings[1].size, 8);
        assert_eq!(timings[1].count, 1);
        // Size 8 sleeps 4x as long as size 2; even heavy jitter cannot
        // close a 6 ms gap.
        assert!(
            timings[1].mean_ns > timings[0].mean_ns,
            "8-SNP mean {} <= 2-SNP mean {}",
            timings[1].mean_ns,
            timings[0].mean_ns
        );
        assert!(t.mean_ns_for_size(2).unwrap() > 0.0);
        assert!(t.mean_ns_for_size(7).is_none());
    }

    #[test]
    fn batch_goes_through_timed_path() {
        let t = TimingEvaluator::new(slow_by_size());
        let mut batch = vec![Haplotype::new(vec![1, 2, 3]); 4];
        t.evaluate_batch(&mut batch);
        assert_eq!(t.timings()[0].count, 4);
        assert_eq!(batch[0].fitness(), 3.0);
    }

    #[test]
    fn reset_clears_state() {
        let t = TimingEvaluator::new(slow_by_size());
        let _ = t.evaluate_one(&[1]);
        assert!(!t.timings().is_empty());
        t.reset();
        assert!(t.timings().is_empty());
    }

    #[test]
    fn oversized_haplotypes_pool_into_last_bucket() {
        let t = TimingEvaluator::new(FnEvaluator::new(100, |_: &[SnpId]| 0.0));
        let wide: Vec<usize> = (0..40).collect();
        let _ = t.evaluate_one(&wide);
        assert_eq!(t.timings()[0].size, MAX_TRACKED_SIZE);
    }
}
