//! # ld-parallel — parallel evaluation for the GA
//!
//! §4.5 of the paper: "the evaluation function can be time consuming …
//! we have made a synchronous parallel implementation of the evaluation
//! phase. The implementation is based on a master / slaves model. The
//! slaves are initiated at the beginning and access only once to the data."
//! The original used C/PVM on a cluster; this crate reproduces the same
//! architecture on shared memory:
//!
//! * [`master_slave`] — a faithful master/slaves evaluator: worker threads
//!   are spawned once, each holding a shared reference to the objective
//!   (= "access only once to the data"); per batch, the master deals
//!   individuals over a crossbeam channel and collects `(index, fitness)`
//!   results — Figure 6 verbatim.
//! * [`rayon_pool`] — the idiomatic-Rust alternative: a rayon parallel
//!   iterator over the batch, optionally on a dedicated pool.
//! * [`metrics`] — timing instrumentation used to regenerate Figure 4
//!   (evaluation time vs haplotype size) and the speedup experiment.
//! * [`island`] — a coarse-grained parallel layer above the GA: several
//!   islands run concurrently and their per-size bests are merged.
//!
//! Both evaluators implement `ld-core`'s [`ld_core::Evaluator`] trait, so
//! the engine's batched evaluation phases parallelize with zero changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod island;
pub mod master_slave;
pub mod metrics;
pub mod rayon_pool;

pub use island::{run_islands, run_ring_migration, IslandConfig, IslandResult, RingConfig};
pub use master_slave::MasterSlaveEvaluator;
pub use metrics::TimingEvaluator;
pub use rayon_pool::RayonEvaluator;
