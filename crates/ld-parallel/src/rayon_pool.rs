//! Rayon-based batch evaluator — the idiomatic shared-memory alternative
//! to the explicit master/slaves model.
//!
//! A batch evaluation is a `par_iter_mut` over the individuals. By default
//! work runs on rayon's global pool; [`RayonEvaluator::with_threads`]
//! builds a dedicated pool, which the speedup experiment uses to sweep
//! worker counts without poisoning the global pool's sizing.

use ld_core::{EvalBackend, EvalBackendError, Evaluator, Haplotype, ScratchPool};
use ld_data::SnpId;
use ld_observe::span::names as span_names;
use ld_observe::Observer;
use rayon::prelude::*;
use rayon::ThreadPool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Evaluator that fans a batch out over a rayon thread pool.
///
/// Each work item borrows an evaluation workspace from a shared
/// [`ScratchPool`]: the pool converges to one warmed scratch per physical
/// worker and then the hot loop stops allocating (rayon's work stealing
/// makes worker identity dynamic, so a pool beats thread-locals here).
pub struct RayonEvaluator<E> {
    inner: E,
    pool: Option<ThreadPool>,
    scratch: ScratchPool,
    /// Attached observability handle; when set, every dispatch records a
    /// summed `compute` span under the scheduler's dispatch span.
    observer: OnceLock<Observer>,
}

impl<E: Evaluator> RayonEvaluator<E> {
    /// Use rayon's global thread pool.
    pub fn new(inner: E) -> Self {
        RayonEvaluator {
            inner,
            pool: None,
            scratch: ScratchPool::new(),
            observer: OnceLock::new(),
        }
    }

    /// Use a dedicated pool with exactly `n_threads` workers.
    ///
    /// # Panics
    /// Panics if `n_threads` is zero or the pool cannot be built.
    pub fn with_threads(inner: E, n_threads: usize) -> Self {
        assert!(n_threads > 0, "need at least one thread");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n_threads)
            .thread_name(|i| format!("ga-rayon-{i}"))
            .build()
            .expect("build rayon pool");
        RayonEvaluator {
            inner,
            pool: Some(pool),
            scratch: ScratchPool::new(),
            observer: OnceLock::new(),
        }
    }

    /// Attach an [`Observer`]: each dispatch then records the summed
    /// per-job compute wall time as a `compute` span, so latency
    /// attribution sees local backends too. First call wins; without an
    /// observer the hot loop reads no clocks.
    pub fn set_observer(&self, observer: Observer) {
        let _ = self.observer.set(observer);
    }

    /// The wrapped objective.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    fn run_batch(&self, batch: &mut [Haplotype], compute_ns: Option<&AtomicU64>) {
        let inner = &self.inner;
        let scratch = &self.scratch;
        batch.par_iter_mut().for_each(|h| {
            let mut guard = scratch.get();
            let started = compute_ns.map(|_| Instant::now());
            let f = inner.evaluate_one_with(&mut guard, h.snps());
            if let (Some(acc), Some(started)) = (compute_ns, started) {
                acc.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            h.set_fitness(f);
        });
    }
}

impl<E: Evaluator> EvalBackend for RayonEvaluator<E> {
    fn n_snps(&self) -> usize {
        self.inner.n_snps()
    }

    fn dispatch(&self, batch: &mut [Haplotype]) -> Result<(), EvalBackendError> {
        let obs = self.observer.get().filter(|o| o.enabled());
        let compute_ns = AtomicU64::new(0);
        let acc = obs.map(|_| &compute_ns);
        match &self.pool {
            Some(pool) => pool.install(|| self.run_batch(batch, acc)),
            None => self.run_batch(batch, acc),
        }
        if let Some(obs) = obs {
            // Summed worker wall time (may exceed the dispatch wall on
            // multi-core runs; attribution normalizes).
            obs.record_span(
                span_names::COMPUTE,
                obs.dispatch_span(),
                Duration::from_nanos(compute_ns.load(Ordering::Relaxed)),
            );
        }
        Ok(())
    }

    fn backend_name(&self) -> &'static str {
        "rayon"
    }
}

impl<E: Evaluator> Evaluator for RayonEvaluator<E> {
    fn n_snps(&self) -> usize {
        self.inner.n_snps()
    }

    fn evaluate_one(&self, snps: &[SnpId]) -> f64 {
        self.inner.evaluate_one(snps)
    }

    fn evaluate_batch(&self, batch: &mut [Haplotype]) {
        self.dispatch(batch).expect("rayon dispatch is infallible");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::evaluator::{CountingEvaluator, FnEvaluator};

    fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        FnEvaluator::new(51, |s: &[SnpId]| s.iter().sum::<usize>() as f64)
    }

    fn batch(n: usize) -> Vec<Haplotype> {
        (0..n)
            .map(|i| Haplotype::new(vec![i % 51, (i * 3 + 1) % 51]))
            .collect()
    }

    #[test]
    fn global_pool_matches_sequential() {
        let seq = toy();
        let par = RayonEvaluator::new(toy());
        let mut a = batch(200);
        let mut b = a.clone();
        seq.evaluate_batch(&mut a);
        par.evaluate_batch(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fitness(), y.fitness());
        }
    }

    #[test]
    fn dedicated_pool_matches_sequential() {
        let par = RayonEvaluator::with_threads(toy(), 3);
        let seq = toy();
        let mut a = batch(100);
        let mut b = a.clone();
        seq.evaluate_batch(&mut a);
        par.evaluate_batch(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fitness(), y.fitness());
        }
    }

    #[test]
    fn counting_is_exact_under_parallelism() {
        let par = RayonEvaluator::with_threads(CountingEvaluator::new(toy()), 4);
        let mut b = batch(500);
        par.evaluate_batch(&mut b);
        assert_eq!(par.inner().count(), 500);
    }

    #[test]
    fn empty_batch_is_noop() {
        let par = RayonEvaluator::new(toy());
        par.evaluate_batch(&mut []);
    }

    #[test]
    fn backend_trait_dispatches() {
        let par = RayonEvaluator::with_threads(toy(), 2);
        assert_eq!(EvalBackend::n_snps(&par), 51);
        assert_eq!(par.backend_name(), "rayon");
        assert_eq!(par.queue_depth(), 0);
        let mut b = batch(10);
        par.dispatch(&mut b).unwrap();
        assert!(b.iter().all(|h| h.is_evaluated()));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = RayonEvaluator::with_threads(toy(), 0);
    }
}
