//! Property-based tests for the statistical substrate.

// When proptest is the offline no-op stub, `proptest!` expands to nothing
// and the whole suite (with its imports and strategies) compiles out.
#![allow(unused_imports, dead_code)]

use ld_stats::chi2::pearson_chi2;
use ld_stats::clump::ClumpStatistic;
use ld_stats::special::{chi2_sf, gamma_p, gamma_q, ln_gamma};
use ld_stats::ContingencyTable;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn gamma_p_q_sum_to_one(a in 0.05f64..50.0, x in 0.0f64..100.0) {
        let p = gamma_p(a, x);
        let q = gamma_q(a, x);
        prop_assert!((p + q - 1.0).abs() < 1e-9, "a={a} x={x}: p={p} q={q}");
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn gamma_p_monotone_in_x(a in 0.1f64..20.0, x in 0.0f64..50.0, dx in 0.01f64..5.0) {
        prop_assert!(gamma_p(a, x + dx) >= gamma_p(a, x) - 1e-12);
    }

    #[test]
    fn ln_gamma_satisfies_recurrence(x in 0.1f64..50.0) {
        // Γ(x+1) = x·Γ(x)  ⇒  lnΓ(x+1) = ln x + lnΓ(x).
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0), "x={x}");
    }

    #[test]
    fn chi2_sf_is_valid_and_monotone(x in 0.0f64..200.0, df in 1.0f64..40.0) {
        let p = chi2_sf(x, df);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(chi2_sf(x + 1.0, df) <= p + 1e-12);
        // More df at the same x ⇒ larger tail.
        prop_assert!(chi2_sf(x, df + 1.0) >= p - 1e-12);
    }

    #[test]
    fn clump_statistics_ordering(cells in prop::collection::vec(0.5f64..80.0, 8)) {
        let t = ContingencyTable::two_by_m(&cells[..4], &cells[4..]).unwrap();
        let t1 = ClumpStatistic::T1.evaluate(&t).unwrap();
        let t2 = ClumpStatistic::T2.evaluate(&t).unwrap();
        let t3 = ClumpStatistic::T3.evaluate(&t).unwrap();
        let t4 = ClumpStatistic::T4.evaluate(&t).unwrap();
        for (name, v) in [("T1", t1), ("T2", t2), ("T3", t3), ("T4", t4)] {
            prop_assert!(v.is_finite() && v >= 0.0, "{name} = {v}");
        }
        // T4 maximizes over a superset of T3's comparisons.
        prop_assert!(t4 >= t3 - 1e-9, "t3={t3} t4={t4}");
        // A single 2×2 pooling never beats the full-table statistic by
        // more than the full χ² itself (sanity bound: both are ≤ N).
        let n = t.total();
        prop_assert!(t1 <= n + 1e-9 && t4 <= n + 1e-9);
    }

    #[test]
    fn collapse_preserves_mass_and_validity(cells in prop::collection::vec(0.0f64..40.0, 12)) {
        let t = ContingencyTable::two_by_m(&cells[..6], &cells[6..]).unwrap();
        let c = t.collapse_rare_cols(5.0);
        prop_assert!((c.total() - t.total()).abs() < 1e-9);
        prop_assert!(c.n_cols() >= 1 && c.n_cols() <= 6);
        // χ² still computable.
        let r = pearson_chi2(&c);
        prop_assert!(r.p_value.is_finite());
    }

    #[test]
    fn pearson_chi2_invariant_under_row_swap(cells in prop::collection::vec(0.0f64..60.0, 6)) {
        let t = ContingencyTable::two_by_m(&cells[..3], &cells[3..]).unwrap();
        let swapped = ContingencyTable::two_by_m(&cells[3..], &cells[..3]).unwrap();
        let a = pearson_chi2(&t);
        let b = pearson_chi2(&swapped);
        prop_assert!((a.statistic - b.statistic).abs() < 1e-9);
        prop_assert_eq!(a.df, b.df);
    }

    #[test]
    fn chi2_scale_invariance_of_pvalue_direction(
        cells in prop::collection::vec(1.0f64..30.0, 4),
        scale in 2.0f64..5.0,
    ) {
        // Scaling all counts up cannot decrease the statistic (same shape,
        // more evidence).
        let t = ContingencyTable::two_by_m(&cells[..2], &cells[2..]).unwrap();
        let scaled_cells: Vec<f64> = cells.iter().map(|c| c * scale).collect();
        let ts = ContingencyTable::two_by_m(&scaled_cells[..2], &scaled_cells[2..]).unwrap();
        let a = pearson_chi2(&t).statistic;
        let b = pearson_chi2(&ts).statistic;
        prop_assert!(b >= a - 1e-9, "a={a} b={b}");
    }
}
