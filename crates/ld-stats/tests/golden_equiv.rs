//! Golden equivalence: every evaluation kernel must be *numerically
//! invisible* — bit-for-bit identical to the legacy allocating path for
//! every `FitnessKind`, every haplotype width the GA explores (2..=8), and
//! under arbitrary scratch reuse patterns. Three paths are compared:
//!
//! * **legacy** — `evaluate_legacy` / `evaluate_detailed_legacy`, the
//!   pre-refactor code preserved verbatim (row gathers, per-call `Vec`s,
//!   BTreeMap pattern pooling);
//! * **scratch** — the column-store workspace kernel
//!   (`KernelPath::Scratch`);
//! * **packed** — the bit-packed word-wide kernel (`KernelPath::Packed`,
//!   the default). Building with `--features simd` runs this same suite
//!   over the unchecked/unrolled lane kernels, closing the fourth flavour
//!   (packed+simd) of the equivalence matrix.

#![allow(deprecated)] // the whole point of this suite is to call the legacy path

use ld_data::synthetic::lille_51;
use ld_stats::{EvalPipeline, EvalScratch, FitnessKind, KernelPath};

const ALL_KINDS: [FitnessKind; 5] = [
    FitnessKind::ClumpT1,
    FitnessKind::ClumpT2,
    FitnessKind::ClumpT3,
    FitnessKind::ClumpT4,
    FitnessKind::EmLrt,
];

/// Haplotypes of width 2..=8: the planted-signal chain plus background
/// sets (including SNPs with missing genotypes in the synthetic data).
fn snp_sets() -> Vec<Vec<usize>> {
    vec![
        vec![8, 12],
        vec![0, 24],
        vec![8, 12, 15],
        vec![0, 24, 38],
        vec![8, 12, 15, 21],
        vec![3, 17, 29, 44],
        vec![8, 12, 15, 21, 32],
        vec![1, 9, 22, 35, 50],
        vec![8, 12, 15, 21, 32, 40],
        vec![2, 11, 19, 27, 36, 47],
        vec![8, 12, 15, 21, 32, 40, 45],
        vec![4, 10, 18, 26, 33, 41, 49],
        vec![8, 12, 15, 21, 32, 40, 45, 48],
        vec![0, 6, 13, 20, 28, 34, 42, 50],
    ]
}

#[test]
fn fitness_is_bit_identical_for_all_kinds_and_sizes() {
    for seed in [42u64, 7] {
        let data = lille_51(seed);
        for kind in ALL_KINDS {
            let packed = EvalPipeline::new(&data, kind).unwrap();
            assert_eq!(packed.kernel_path(), KernelPath::Packed);
            let scratch_path = packed.clone().with_kernel_path(KernelPath::Scratch);
            let mut scratch = EvalScratch::new();
            for snps in snp_sets() {
                let legacy = packed.evaluate_legacy(&snps).unwrap();
                let fast = scratch_path.evaluate_with(&mut scratch, &snps).unwrap();
                assert_eq!(
                    legacy.to_bits(),
                    fast.to_bits(),
                    "{kind:?} seed {seed} snps {snps:?}: legacy {legacy} vs scratch {fast}"
                );
                let word_wide = packed.evaluate_with(&mut scratch, &snps).unwrap();
                assert_eq!(
                    legacy.to_bits(),
                    word_wide.to_bits(),
                    "{kind:?} seed {seed} snps {snps:?}: legacy {legacy} vs packed {word_wide}"
                );
                // The convenience wrapper (fresh scratch per call) too.
                let wrapped = packed.evaluate(&snps).unwrap();
                assert_eq!(legacy.to_bits(), wrapped.to_bits());
            }
        }
    }
}

#[test]
fn detailed_output_is_bit_identical() {
    let data = lille_51(42);
    for kind in ALL_KINDS {
        let p = EvalPipeline::new(&data, kind).unwrap();
        let mut scratch = EvalScratch::new();
        for snps in snp_sets() {
            let legacy = p.evaluate_detailed_legacy(&snps).unwrap();
            let fast = p.evaluate_detailed_with(&mut scratch, &snps).unwrap();
            assert_eq!(legacy.fitness.to_bits(), fast.fitness.to_bits());
            assert_eq!(
                legacy.chi2.statistic.to_bits(),
                fast.chi2.statistic.to_bits()
            );
            assert_eq!(legacy.chi2.df.to_bits(), fast.chi2.df.to_bits());
            assert_eq!(legacy.chi2.p_value.to_bits(), fast.chi2.p_value.to_bits());
            // HaplotypeDist and ContingencyTable are PartialEq over exact
            // f64 contents: structural equality means bit equality here.
            assert_eq!(legacy.affected, fast.affected, "{kind:?} {snps:?}");
            assert_eq!(legacy.unaffected, fast.unaffected, "{kind:?} {snps:?}");
            assert_eq!(legacy.table, fast.table, "{kind:?} {snps:?}");
        }
    }
}

#[test]
fn one_scratch_reused_across_kinds_and_sizes_stays_identical() {
    // Interleave widths, objectives, and kernel paths through a single
    // workspace so every buffer shrinks and regrows: stale state from any
    // previous call must never leak into the next result.
    let data = lille_51(42);
    let pipelines: Vec<EvalPipeline> = ALL_KINDS
        .iter()
        .flat_map(|&k| {
            let p = EvalPipeline::new(&data, k).unwrap();
            let s = p.clone().with_kernel_path(KernelPath::Scratch);
            [p, s]
        })
        .collect();
    let mut scratch = EvalScratch::new();
    for round in 0..3 {
        for (i, snps) in snp_sets().iter().enumerate() {
            let p = &pipelines[(i + round) % pipelines.len()];
            let legacy = p.evaluate_legacy(snps).unwrap();
            let fast = p.evaluate_with(&mut scratch, snps).unwrap();
            assert_eq!(legacy.to_bits(), fast.to_bits(), "{:?} {snps:?}", p.kind());
        }
    }
}

#[test]
fn error_cases_agree_with_legacy() {
    let data = lille_51(42);
    let p = EvalPipeline::new(&data, FitnessKind::ClumpT1).unwrap();
    let mut scratch = EvalScratch::new();
    for bad in [&[][..], &[3, 2][..], &[3, 3][..], &[51][..]] {
        assert!(p.evaluate_legacy(bad).is_err());
        assert!(p.evaluate_with(&mut scratch, bad).is_err());
    }
    // A failed evaluation must not poison the workspace.
    let snps = [8, 12, 15];
    assert_eq!(
        p.evaluate_legacy(&snps).unwrap().to_bits(),
        p.evaluate_with(&mut scratch, &snps).unwrap().to_bits()
    );
}
