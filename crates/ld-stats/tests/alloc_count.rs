//! Allocation-regression guard for the evaluation kernel.
//!
//! Installs a counting `#[global_allocator]` and asserts that a warmed-up
//! `EvalPipeline::evaluate_with` performs **zero** heap allocations — the
//! property the whole scratch-workspace refactor exists to provide. Any
//! future change that sneaks a per-call `Vec`, `format!`, or collect into
//! the hot path fails this test with the exact allocation delta.
//!
//! Gated behind the `alloc-count` feature because a global allocator is
//! process-wide state that other test binaries should not inherit:
//!
//! `cargo test -p ld-stats --features alloc-count --test alloc_count`

#![cfg(feature = "alloc-count")]

use ld_data::synthetic::lille_51;
use ld_stats::{EvalPipeline, EvalScratch, FitnessKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator with a global allocation counter (frees not counted:
/// the guard is about acquiring memory in the hot path).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is an acquisition too — scratch buffers must be at their
        // high-water mark after warm-up.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warmed_evaluate_with_performs_zero_allocations() {
    let data = lille_51(42);
    // The exact SNP sets measured below — warm-up must cover them so every
    // scratch buffer reaches its high-water mark first.
    let snp_sets: Vec<Vec<usize>> = vec![
        vec![8, 12],
        vec![8, 12, 15],
        vec![0, 24, 38],
        vec![8, 12, 15, 21],
        vec![8, 12, 15, 21, 32],
        vec![8, 12, 15, 21, 32, 40],
    ];
    for kind in [
        FitnessKind::ClumpT1,
        FitnessKind::ClumpT2,
        FitnessKind::ClumpT3,
        FitnessKind::ClumpT4,
        FitnessKind::EmLrt,
    ] {
        let p = EvalPipeline::new(&data, kind).unwrap();
        let mut scratch = EvalScratch::new();
        // Warm-up: two passes (the second proves buffers already fit).
        for _ in 0..2 {
            for snps in &snp_sets {
                p.evaluate_with(&mut scratch, snps).unwrap();
            }
        }
        // Steady state: count allocations across a full measured pass.
        let before = allocs();
        let mut acc = 0.0;
        for snps in &snp_sets {
            acc += p.evaluate_with(&mut scratch, snps).unwrap();
        }
        let delta = allocs() - before;
        assert!(acc.is_finite());
        assert_eq!(
            delta, 0,
            "{kind:?}: {delta} heap allocations in steady-state evaluate_with"
        );
    }
}

#[test]
fn legacy_path_allocates_as_a_sanity_check() {
    // Prove the counter actually observes this thread's allocations: the
    // deprecated path must show a non-zero delta where the scratch path
    // shows none.
    #![allow(deprecated)]
    let data = lille_51(42);
    let p = EvalPipeline::new(&data, FitnessKind::ClumpT1).unwrap();
    let snps = [8usize, 12, 15];
    let _ = p.evaluate_legacy(&snps).unwrap(); // touch lazy init anywhere
    let before = allocs();
    let _ = p.evaluate_legacy(&snps).unwrap();
    assert!(
        allocs() > before,
        "counting allocator saw no allocations on the allocating path"
    );
}
