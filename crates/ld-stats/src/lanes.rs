//! Inner lane kernels of the packed EM iteration loop.
//!
//! [`crate::em::EmEstimator::estimate_packed_into`] spends essentially all
//! of its time in three tiny loops per iteration: the pair *weight* pass,
//! the posterior *fraction* pass, and the per-haplotype *gather* sum.
//! This module holds those loops in two interchangeable flavours:
//!
//! * **portable** (default): plain safe indexed loops. The reference.
//! * **`simd` feature**: the same loops with the bounds checks lifted
//!   (`get_unchecked` over spans the kernel sized itself) and the
//!   elementwise fraction pass unrolled 4-wide, so the compiler is free
//!   to emit vector divisions/multiplies under `-C target-feature=+avx2`
//!   or similar.
//!
//! Both flavours execute the *identical sequence of floating-point
//! operations per element*: the weight pass and gather sums stay strictly
//! serial (their accumulation order is observable in the last ulp), and
//! the fraction pass is elementwise (each `frac[i]` depends only on
//! `w[i]`), so unrolling cannot change any bit of any element. The golden
//! suites assert this equivalence; the CI Miri job checks the `unsafe`
//! lane code against the packed kernel tests.
//!
//! Safety contract shared by all three kernels (upheld by the caller in
//! `em.rs`, re-checked here with `debug_assert!`):
//!
//! * `s <= e`, spans index `w`/`frac`/`ad`/`bd`/`mult` which all have
//!   length ≥ `e` (they are sized to the pair count),
//! * every `ad[i]`/`bd[i]` is a dense haplotype index `< f.len()`,
//! * every `slots[i]` in `lo..hi` indexes into `frac`.

#![cfg_attr(feature = "simd", allow(unsafe_code))]

/// E-step weight pass over one pattern's pair span: writes
/// `w[i] = (mult[i] · f[ad[i]]) · f[bd[i]]` for `i ∈ s..e` and returns the
/// in-order serial total — the exact expressions and order of the legacy
/// `2.0 * freqs[a] * freqs[b]` loop (`1.0 · x` and the parse order
/// `(2.0 · fa) · fb` are both exact).
#[cfg(not(feature = "simd"))]
#[inline(always)]
pub(crate) fn weight_pass(
    w: &mut [f64],
    f: &[f64],
    ad: &[u32],
    bd: &[u32],
    mult: &[f64],
    s: usize,
    e: usize,
) -> f64 {
    let mut total = 0.0;
    for i in s..e {
        let wi = (mult[i] * f[ad[i] as usize]) * f[bd[i] as usize];
        w[i] = wi;
        total += wi;
    }
    total
}

/// See the portable `weight_pass`; identical operation order.
#[cfg(feature = "simd")]
#[inline(always)]
pub(crate) fn weight_pass(
    w: &mut [f64],
    f: &[f64],
    ad: &[u32],
    bd: &[u32],
    mult: &[f64],
    s: usize,
    e: usize,
) -> f64 {
    debug_assert!(s <= e && e <= w.len() && e <= ad.len() && e <= bd.len() && e <= mult.len());
    let mut total = 0.0;
    for i in s..e {
        // SAFETY: span bounds and dense-index ranges per the module
        // contract (debug-asserted above and in the caller).
        unsafe {
            debug_assert!((*ad.get_unchecked(i) as usize) < f.len());
            debug_assert!((*bd.get_unchecked(i) as usize) < f.len());
            let wi = (*mult.get_unchecked(i) * *f.get_unchecked(*ad.get_unchecked(i) as usize))
                * *f.get_unchecked(*bd.get_unchecked(i) as usize);
            *w.get_unchecked_mut(i) = wi;
            total += wi;
        }
    }
    total
}

/// Posterior fraction pass: `frac[i] = count · w[i] / total` for
/// `i ∈ s..e`. Elementwise — no cross-element dependency — so the `simd`
/// flavour may unroll freely without changing any element's bits.
#[cfg(not(feature = "simd"))]
#[inline(always)]
pub(crate) fn frac_pass(frac: &mut [f64], w: &[f64], count: f64, total: f64, s: usize, e: usize) {
    for i in s..e {
        frac[i] = count * w[i] / total;
    }
}

/// See the portable `frac_pass`; 4-wide unrolled, same per-element bits.
#[cfg(feature = "simd")]
#[inline(always)]
pub(crate) fn frac_pass(frac: &mut [f64], w: &[f64], count: f64, total: f64, s: usize, e: usize) {
    debug_assert!(s <= e && e <= frac.len() && e <= w.len());
    let mut i = s;
    // SAFETY: `s..e` is within both slices per the module contract.
    unsafe {
        while i + 4 <= e {
            let f0 = count * *w.get_unchecked(i) / total;
            let f1 = count * *w.get_unchecked(i + 1) / total;
            let f2 = count * *w.get_unchecked(i + 2) / total;
            let f3 = count * *w.get_unchecked(i + 3) / total;
            *frac.get_unchecked_mut(i) = f0;
            *frac.get_unchecked_mut(i + 1) = f1;
            *frac.get_unchecked_mut(i + 2) = f2;
            *frac.get_unchecked_mut(i + 3) = f3;
            i += 4;
        }
        while i < e {
            *frac.get_unchecked_mut(i) = count * *w.get_unchecked(i) / total;
            i += 1;
        }
    }
}

/// Gather the posterior fractions feeding one haplotype:
/// `Σ frac[slots[j]]` for `j ∈ lo..hi`, strictly in slot order (the CSR
/// build lays slots out in the legacy scatter's accumulation order, so
/// this serial sum reproduces its bits).
#[cfg(not(feature = "simd"))]
#[inline(always)]
pub(crate) fn gather_sum(frac: &[f64], slots: &[u32], lo: usize, hi: usize) -> f64 {
    let mut acc = 0.0;
    for &slot in &slots[lo..hi] {
        acc += frac[slot as usize];
    }
    acc
}

/// See the portable `gather_sum`; identical serial order.
#[cfg(feature = "simd")]
#[inline(always)]
pub(crate) fn gather_sum(frac: &[f64], slots: &[u32], lo: usize, hi: usize) -> f64 {
    debug_assert!(lo <= hi && hi <= slots.len());
    let mut acc = 0.0;
    // SAFETY: `lo..hi` indexes `slots` and every slot indexes `frac`, per
    // the module contract (the CSR build sized both).
    unsafe {
        for j in lo..hi {
            let slot = *slots.get_unchecked(j) as usize;
            debug_assert!(slot < frac.len());
            acc += *frac.get_unchecked(slot);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_lanes_match_reference_miri() {
        // Exercise all three kernels (whichever flavour is compiled in)
        // against straightforward reference loops. Under Miri with the
        // `simd` feature this validates the unchecked indexing.
        let f = [0.5, 0.25, 0.125, 0.0625, 0.03125];
        let ad = [0u32, 1, 2, 3, 4, 0];
        let bd = [1u32, 2, 3, 4, 0, 0];
        let mult = [2.0, 2.0, 1.0, 2.0, 2.0, 1.0];
        let mut w = [0.0; 6];
        let total = weight_pass(&mut w, &f, &ad, &bd, &mult, 1, 5);
        let mut ref_total = 0.0;
        for i in 1..5 {
            let wi = (mult[i] * f[ad[i] as usize]) * f[bd[i] as usize];
            assert_eq!(w[i].to_bits(), wi.to_bits());
            ref_total += wi;
        }
        assert_eq!(total.to_bits(), ref_total.to_bits());
        assert_eq!(w[0], 0.0, "outside the span stays untouched");
        assert_eq!(w[5], 0.0);

        let mut frac = [0.0; 6];
        frac_pass(&mut frac, &w, 3.0, total, 1, 5);
        for i in 1..5 {
            assert_eq!(frac[i].to_bits(), (3.0 * w[i] / total).to_bits());
        }

        let slots = [1u32, 2, 3, 4, 2, 1];
        let got = gather_sum(&frac, &slots, 0, 6);
        let mut want = 0.0;
        for &s in &slots {
            want += frac[s as usize];
        }
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(gather_sum(&frac, &slots, 3, 3), 0.0);
    }

    #[test]
    fn frac_pass_tail_handling() {
        // Span lengths 0..=9 cover every unroll remainder.
        for len in 0..=9usize {
            let w: Vec<f64> = (0..len).map(|i| (i + 1) as f64).collect();
            let mut frac = vec![0.0; len];
            frac_pass(&mut frac, &w, 2.0, 7.0, 0, len);
            for i in 0..len {
                assert_eq!(frac[i].to_bits(), (2.0 * w[i] / 7.0).to_bits());
            }
        }
    }
}
