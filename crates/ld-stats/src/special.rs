//! Special functions: log-gamma and the regularized incomplete gamma
//! functions, from which the χ² survival function is built.
//!
//! Implementations follow the classic Lanczos approximation for `ln Γ` and
//! the series / continued-fraction split of *Numerical Recipes* for
//! `P(a, x)` / `Q(a, x)`. Accuracy is ~1e-12 over the ranges an association
//! test exercises; unit tests pin values against independently computed
//! references.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation with g = 7, n = 9 coefficients.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Coefficients for g = 7 (Godfrey / Press et al.).
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series representation of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
}

/// Continued-fraction representation of `Q(a, x)` (modified Lentz),
/// convergent for `x ≥ a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = f64::MIN_POSITIVE / EPS;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    ((-x + a * x.ln() - ln_gamma(a)).exp() * h).clamp(0.0, 1.0)
}

/// Survival function of the χ² distribution with `df` degrees of freedom:
/// `Pr[X ≥ x] = Q(df / 2, x / 2)`.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi2_sf requires df > 0, got {df}");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, x / 2.0)
}

/// `ln(n!)` via `ln Γ(n + 1)`.
pub fn ln_factorial(n: u64) -> f64 {
    // Small-n table keeps the hot combinatorics paths exact and fast.
    // (Entries are ln(n!); ln(2!) coincides with LN_2 by definition.)
    #[allow(clippy::approx_constant, clippy::excessive_precision)]
    const TABLE: [f64; 11] = [
        0.0,
        0.0,
        0.693_147_180_559_945_3,
        1.791_759_469_228_055,
        3.178_053_830_347_945_8,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
    ];
    if (n as usize) < TABLE.len() {
        TABLE[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_integer_values() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24f64.ln(), 1e-10);
        close(ln_gamma(10.0), 362_880f64.ln(), 1e-9);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2.
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[
            (0.5, 0.3),
            (1.0, 1.0),
            (2.5, 4.0),
            (10.0, 3.0),
            (10.0, 30.0),
        ] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{-x}.
        for &x in &[0.1, 1.0, 2.5, 10.0] {
            close(gamma_p(1.0, x), 1.0 - (-x_f(x)).exp(), 1e-12);
        }
        fn x_f(x: f64) -> f64 {
            x
        }
    }

    #[test]
    fn chi2_sf_known_quantiles() {
        // Classic table values: χ²(df=1) at 3.841 → p ≈ 0.05.
        close(chi2_sf(3.841_458_82, 1.0), 0.05, 1e-6);
        // χ²(df=2) sf(x) = e^{-x/2}.
        close(chi2_sf(5.991_464_55, 2.0), 0.05, 1e-6);
        close(chi2_sf(4.0, 2.0), (-2.0f64).exp(), 1e-12);
        // χ²(df=5) at 11.0705 → 0.05.
        close(chi2_sf(11.070_497_7, 5.0), 0.05, 1e-6);
        // χ²(df=10) at 18.3070 → 0.05.
        close(chi2_sf(18.307_038, 10.0), 0.05, 1e-6);
    }

    #[test]
    fn chi2_sf_bounds_and_monotonicity() {
        assert_eq!(chi2_sf(0.0, 3.0), 1.0);
        assert_eq!(chi2_sf(-1.0, 3.0), 1.0);
        let mut prev = 1.0;
        for i in 1..200 {
            let p = chi2_sf(i as f64 * 0.5, 4.0);
            assert!(p <= prev + 1e-15, "sf must be non-increasing");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        assert!(chi2_sf(100.0, 1.0) < 1e-20);
    }

    #[test]
    fn ln_factorial_table_and_formula_agree() {
        for n in 0..25u64 {
            let exact: f64 = (1..=n).map(|i| (i as f64).ln()).sum();
            close(ln_factorial(n), exact, 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    #[should_panic(expected = "requires df > 0")]
    fn chi2_sf_rejects_zero_df() {
        let _ = chi2_sf(1.0, 0.0);
    }
}
