//! Error type for statistical computations.

use std::fmt;

/// Errors from statistical estimation and testing.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// No usable observations (e.g. every individual has a missing call).
    NoObservations {
        /// Where the data ran out.
        context: &'static str,
    },
    /// A haplotype size outside the supported range was requested.
    HaplotypeTooLarge {
        /// Requested number of SNPs.
        k: usize,
        /// Maximum supported (bitmask width).
        max: usize,
    },
    /// The EM iteration failed to make progress (should not happen with
    /// valid inputs; kept as a defensive signal).
    EmDiverged {
        /// Iterations performed before the failure.
        iterations: usize,
    },
    /// Contingency-table construction received inconsistent inputs.
    BadTable(String),
    /// An input parameter is outside its domain.
    InvalidParameter(String),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::NoObservations { context } => {
                write!(f, "no usable observations in {context}")
            }
            StatsError::HaplotypeTooLarge { k, max } => {
                write!(
                    f,
                    "haplotype of {k} SNPs exceeds supported maximum of {max}"
                )
            }
            StatsError::EmDiverged { iterations } => {
                write!(f, "EM diverged after {iterations} iterations")
            }
            StatsError::BadTable(msg) => write!(f, "bad contingency table: {msg}"),
            StatsError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StatsError::HaplotypeTooLarge { k: 40, max: 24 };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("24"));
        let e = StatsError::NoObservations { context: "EM" };
        assert!(e.to_string().contains("EM"));
    }
}
