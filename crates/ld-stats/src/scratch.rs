//! Reusable evaluation workspace.
//!
//! A single EH-DIALL → CLUMP evaluation needs a dozen intermediate
//! buffers: EM pattern pools and posterior weights, two fitted haplotype
//! distributions (plus a pooled one for the LRT), a 2×m contingency
//! table, χ² margins, and CLUMP collapse/sub-table workspaces.
//! [`EvalScratch`] owns all of them so the kernel
//! ([`crate::fitness::EvalPipeline::evaluate_with`]) performs zero heap
//! allocations in steady state — buffers are `clear()`ed and refilled,
//! growing only until they reach the high-water mark of the largest
//! haplotype evaluated.
//!
//! Ownership convention across the stack (see DESIGN.md §3e): one scratch
//! per *worker*, never per batch — a rayon worker, a master/slave thread,
//! and a network slave connection each own one for their lifetime, because
//! scratch reuse across consecutive evaluations is where the allocation
//! savings come from. [`ScratchPool`] serves backends whose worker
//! provenance is dynamic (work-stealing rayon loops): `get()` hands out a
//! warmed workspace and returns it to the pool on drop.

use crate::chi2::Chi2Scratch;
use crate::clump::ClumpScratch;
use crate::em::{EmScratch, HaplotypeDist};
use crate::table::ContingencyTable;
use std::sync::Mutex;

/// All intermediate buffers for one haplotype evaluation, reused across
/// calls. Create once per worker with [`EvalScratch::new`] and thread
/// through `evaluate_with`.
#[derive(Debug)]
pub struct EvalScratch {
    /// EM pattern pooling, pair expansion, and posterior-weight buffers.
    pub(crate) em: EmScratch,
    /// Fitted distribution for the affected group.
    pub(crate) dist_a: HaplotypeDist,
    /// Fitted distribution for the unaffected group.
    pub(crate) dist_b: HaplotypeDist,
    /// Pooled-group distribution (EM-LRT null model).
    pub(crate) pooled: HaplotypeDist,
    /// The 2×m expected-count contingency table.
    pub(crate) table: ContingencyTable,
    /// χ² margin and live-index buffers.
    pub(crate) chi2: Chi2Scratch,
    /// CLUMP collapse and column-vs-rest sub-table buffers.
    pub(crate) clump: ClumpScratch,
}

impl EvalScratch {
    /// A fresh, empty workspace. Buffers grow on first use and are reused
    /// thereafter.
    pub fn new() -> Self {
        EvalScratch {
            em: EmScratch::new(),
            dist_a: HaplotypeDist::empty(),
            dist_b: HaplotypeDist::empty(),
            pooled: HaplotypeDist::empty(),
            table: ContingencyTable::empty(),
            chi2: Chi2Scratch::default(),
            clump: ClumpScratch::default(),
        }
    }
}

impl Default for EvalScratch {
    fn default() -> Self {
        EvalScratch::new()
    }
}

/// A shared pool of [`EvalScratch`] workspaces for backends whose worker
/// identity is dynamic (e.g. work-stealing thread pools).
///
/// `get()` pops a warmed workspace (or creates one when the pool is dry —
/// at most once per concurrent worker); the guard returns it on drop, so
/// the pool converges to one workspace per concurrent worker and then
/// stops allocating.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<EvalScratch>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Borrow a workspace; it returns to the pool when the guard drops.
    pub fn get(&self) -> ScratchGuard<'_> {
        let scratch = self
            .free
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        ScratchGuard {
            pool: self,
            scratch: Some(scratch),
        }
    }
}

/// RAII guard from [`ScratchPool::get`]; derefs to [`EvalScratch`].
#[derive(Debug)]
pub struct ScratchGuard<'a> {
    pool: &'a ScratchPool,
    scratch: Option<EvalScratch>,
}

impl std::ops::Deref for ScratchGuard<'_> {
    type Target = EvalScratch;

    fn deref(&self) -> &EvalScratch {
        self.scratch.as_ref().expect("scratch taken")
    }
}

impl std::ops::DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut EvalScratch {
        self.scratch.as_mut().expect("scratch taken")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            if let Ok(mut free) = self.pool.free.lock() {
                free.push(scratch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_workspaces() {
        let pool = ScratchPool::new();
        {
            let _a = pool.get();
            let _b = pool.get();
        }
        // Both returned; two more borrows drain the pool without growth.
        assert_eq!(pool.free.lock().unwrap().len(), 2);
        {
            let _a = pool.get();
            let _b = pool.get();
            assert_eq!(pool.free.lock().unwrap().len(), 0);
        }
        assert_eq!(pool.free.lock().unwrap().len(), 2);
    }

    #[test]
    fn guard_derefs_to_scratch() {
        let pool = ScratchPool::new();
        let mut g = pool.get();
        // Touch a field through DerefMut to prove the workspace is usable.
        let s: &mut EvalScratch = &mut g;
        s.table = ContingencyTable::empty();
    }
}
