//! Monte-Carlo simulation of contingency tables with fixed margins.
//!
//! CLUMP "assess[es] the significance of the departure of observed values in
//! a contingency table from the expected values conditional on the marginal
//! totals" (paper §2.4.2) by simulating random tables with the same margins.
//! The exact conditional sampler used here is the permutation construction:
//! expand the column margin into a multiset of column labels, shuffle it,
//! and deal the first `R₀` labels to row 0, the next `R₁` to row 1, …
//! Each shuffle yields a table drawn uniformly from the hypergeometric
//! (fixed-margin) null.

use crate::error::StatsError;
use crate::table::ContingencyTable;
use rand::prelude::*;

/// Sample one table with the given integer margins.
///
/// `row_totals` and `col_totals` must have equal sums.
pub fn sample_fixed_margins<R: Rng + ?Sized>(
    row_totals: &[u64],
    col_totals: &[u64],
    rng: &mut R,
) -> Result<ContingencyTable, StatsError> {
    let n_row: u64 = row_totals.iter().sum();
    let n_col: u64 = col_totals.iter().sum();
    if n_row != n_col {
        return Err(StatsError::BadTable(format!(
            "margin sums differ: rows {n_row} vs cols {n_col}"
        )));
    }
    let n_rows = row_totals.len();
    let n_cols = col_totals.len();
    if n_rows == 0 || n_cols == 0 {
        return Err(StatsError::BadTable("empty margins".into()));
    }
    // Expand column labels, shuffle, deal to rows.
    let mut labels: Vec<u32> = Vec::with_capacity(n_row as usize);
    for (c, &t) in col_totals.iter().enumerate() {
        labels.extend(std::iter::repeat_n(c as u32, t as usize));
    }
    labels.shuffle(rng);
    let mut cells = vec![0.0f64; n_rows * n_cols];
    let mut cursor = 0usize;
    for (r, &t) in row_totals.iter().enumerate() {
        for &c in &labels[cursor..cursor + t as usize] {
            cells[r * n_cols + c as usize] += 1.0;
        }
        cursor += t as usize;
    }
    ContingencyTable::from_rows(n_rows, n_cols, cells)
}

/// Round a fractional table to integer counts cell-wise (used to feed EM
/// expected counts into the integer Monte-Carlo machinery). Margins are
/// recomputed from the rounded cells so they stay consistent.
pub fn round_table(t: &ContingencyTable) -> ContingencyTable {
    let cells: Vec<f64> = t.cells().iter().map(|&c| c.round()).collect();
    ContingencyTable::from_rows(t.n_rows(), t.n_cols(), cells)
        .expect("rounding preserves shape and non-negativity")
}

/// Monte-Carlo p-value of `statistic` on `observed` under the fixed-margin
/// null: `(1 + #{simulated ≥ observed}) / (1 + n_sims)` (add-one estimator,
/// guaranteeing a valid p-value in `(0, 1]`).
pub fn mc_pvalue<R, F>(
    observed: &ContingencyTable,
    n_sims: usize,
    rng: &mut R,
    statistic: F,
) -> Result<f64, StatsError>
where
    R: Rng + ?Sized,
    F: Fn(&ContingencyTable) -> f64,
{
    if n_sims == 0 {
        return Err(StatsError::InvalidParameter(
            "mc_pvalue needs at least one simulation".into(),
        ));
    }
    let rounded = round_table(observed);
    let row_totals: Vec<u64> = rounded.row_totals().iter().map(|&x| x as u64).collect();
    let col_totals: Vec<u64> = rounded.col_totals().iter().map(|&x| x as u64).collect();
    let observed_stat = statistic(observed);
    let mut exceed = 0usize;
    for _ in 0..n_sims {
        let sim = sample_fixed_margins(&row_totals, &col_totals, rng)?;
        if statistic(&sim) >= observed_stat {
            exceed += 1;
        }
    }
    Ok((1 + exceed) as f64 / (1 + n_sims) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chi2::pearson_chi2;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1234)
    }

    #[test]
    fn sampled_tables_have_requested_margins() {
        let mut rng = rng();
        let rows = [30u64, 20];
        let cols = [10u64, 25, 15];
        for _ in 0..50 {
            let t = sample_fixed_margins(&rows, &cols, &mut rng).unwrap();
            assert_eq!(t.row_totals(), vec![30.0, 20.0]);
            assert_eq!(t.col_totals(), vec![10.0, 25.0, 15.0]);
        }
    }

    #[test]
    fn mismatched_margins_rejected() {
        let mut rng = rng();
        assert!(sample_fixed_margins(&[3], &[2], &mut rng).is_err());
        assert!(sample_fixed_margins(&[], &[0], &mut rng).is_err());
    }

    #[test]
    fn sampler_mean_matches_independence_expectation() {
        // E[cell(0,0)] = R0*C0/N = 20*15/40 = 7.5.
        let mut rng = rng();
        let mut sum = 0.0;
        let n = 2000;
        for _ in 0..n {
            let t = sample_fixed_margins(&[20, 20], &[15, 25], &mut rng).unwrap();
            sum += t.get(0, 0);
        }
        let mean = sum / n as f64;
        assert!((mean - 7.5).abs() < 0.15, "mean = {mean}");
    }

    #[test]
    fn round_table_preserves_shape() {
        let t = ContingencyTable::from_rows(2, 2, vec![1.4, 2.6, 3.5, 0.2]).unwrap();
        let r = round_table(&t);
        assert_eq!(r.cells(), &[1.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn mc_pvalue_small_for_strong_association() {
        let t = ContingencyTable::from_rows(2, 2, vec![40.0, 5.0, 5.0, 40.0]).unwrap();
        let p = mc_pvalue(&t, 500, &mut rng(), |t| pearson_chi2(t).statistic).unwrap();
        assert!(p <= 1.0 / 500.0 + 1e-9, "p = {p}");
    }

    #[test]
    fn mc_pvalue_large_under_null() {
        let t = ContingencyTable::from_rows(2, 2, vec![20.0, 20.0, 20.0, 20.0]).unwrap();
        let p = mc_pvalue(&t, 200, &mut rng(), |t| pearson_chi2(t).statistic).unwrap();
        assert!(p > 0.5, "p = {p}");
    }

    #[test]
    fn mc_pvalue_agrees_with_asymptotic_moderate_case() {
        // A moderately associated table: MC and χ² p-values should be in the
        // same ballpark.
        let t = ContingencyTable::from_rows(2, 2, vec![30.0, 20.0, 18.0, 32.0]).unwrap();
        let asym = pearson_chi2(&t).p_value;
        let p = mc_pvalue(&t, 4000, &mut rng(), |t| pearson_chi2(t).statistic).unwrap();
        assert!((p - asym).abs() < 0.02, "mc {p} vs asymptotic {asym}");
    }

    #[test]
    fn zero_sims_is_an_error() {
        let t = ContingencyTable::from_rows(2, 2, vec![1.0; 4]).unwrap();
        assert!(mc_pvalue(&t, 0, &mut rng(), |_| 0.0).is_err());
    }
}
