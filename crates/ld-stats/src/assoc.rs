//! Per-haplotype association measures — the biologist-facing report.
//!
//! CLUMP's T1 says *whether* a haplotype set separates cases from
//! controls; the follow-up questions are *which* haplotype carries the
//! risk and *how strong* it is. This module provides:
//!
//! * [`fisher_exact_2x2`] — Fisher's exact test for 2×2 tables (the
//!   small-count companion to χ², computed from log-factorials);
//! * [`odds_ratio`] — the odds ratio with a Woolf (log-normal) 95%
//!   confidence interval, Haldane-corrected for zero cells;
//! * [`risk_report`] — per-haplotype odds ratios and exact p-values from
//!   an evaluation's concatenated table.

use crate::error::StatsError;
use crate::fitness::EvalDetail;
use crate::special::ln_factorial;

/// Odds ratio with a 95% confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OddsRatio {
    /// Point estimate (Haldane-corrected when any cell is zero).
    pub or: f64,
    /// Lower 95% bound.
    pub ci_low: f64,
    /// Upper 95% bound.
    pub ci_high: f64,
}

/// Woolf's method on `[[a, b], [c, d]]` (a = exposed cases, b = unexposed
/// cases, c = exposed controls, d = unexposed controls), with the Haldane
/// +0.5 correction when any cell is (near-)zero.
///
/// The correction triggers below half a count, not at exact zero: the
/// inputs here are EM *expected* counts, where an empty cell often comes
/// out as 1e-14 rather than 0.0 and would otherwise explode the ratio.
pub fn odds_ratio(a: f64, b: f64, c: f64, d: f64) -> OddsRatio {
    let (a, b, c, d) = if a < 0.5 || b < 0.5 || c < 0.5 || d < 0.5 {
        (a + 0.5, b + 0.5, c + 0.5, d + 0.5)
    } else {
        (a, b, c, d)
    };
    let or = (a * d) / (b * c);
    let se = (1.0 / a + 1.0 / b + 1.0 / c + 1.0 / d).sqrt();
    const Z95: f64 = 1.959_963_984_540_054;
    OddsRatio {
        or,
        ci_low: (or.ln() - Z95 * se).exp(),
        ci_high: (or.ln() + Z95 * se).exp(),
    }
}

/// Log of the hypergeometric probability of the table
/// `[[a, b], [c, d]]` with fixed margins.
fn ln_hypergeom(a: u64, b: u64, c: u64, d: u64) -> f64 {
    let n = a + b + c + d;
    ln_factorial(a + b) + ln_factorial(c + d) + ln_factorial(a + c) + ln_factorial(b + d)
        - ln_factorial(n)
        - ln_factorial(a)
        - ln_factorial(b)
        - ln_factorial(c)
        - ln_factorial(d)
}

/// Two-sided Fisher's exact test on a 2×2 table of integer counts: the sum
/// of the probabilities of all tables (with the same margins) no more
/// probable than the observed one.
pub fn fisher_exact_2x2(a: u64, b: u64, c: u64, d: u64) -> f64 {
    let row1 = a + b;
    let col1 = a + c;
    let n = a + b + c + d;
    if n == 0 {
        return 1.0;
    }
    let observed = ln_hypergeom(a, b, c, d);
    let a_min = col1.saturating_sub(n - row1);
    let a_max = row1.min(col1);
    let mut p = 0.0;
    for x in a_min..=a_max {
        // Note `n + x - row1 - col1`: adding x first keeps the u64 math
        // non-negative for every x in [a_min, a_max].
        let (xa, xb, xc, xd) = (x, row1 - x, col1 - x, n + x - row1 - col1);
        let lp = ln_hypergeom(xa, xb, xc, xd);
        if lp <= observed + 1e-9 {
            p += lp.exp();
        }
    }
    p.min(1.0)
}

/// Šidák adjustment of a nominal p-value for a search over `n_tests`
/// candidates: `1 − (1 − p)^n`, computed stably via `ln1p`/`expm1`.
///
/// The GA's winning haplotype was selected from thousands of evaluated
/// candidates, so its nominal p-value is optimistically biased (winner's
/// curse). Treating every evaluation as an independent test is
/// *conservative* (candidates overlap heavily), which is the right
/// direction for a screening report; the paper's CLUMP reference solves
/// the same problem for its own statistics with Monte-Carlo simulation.
pub fn sidak_adjust(p: f64, n_tests: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if n_tests <= 1 {
        return p;
    }
    // 1 - (1-p)^n = -expm1(n * ln(1-p))
    (-((n_tests as f64) * (-p).ln_1p()).exp_m1()).clamp(0.0, 1.0)
}

/// Risk summary of one haplotype column.
#[derive(Debug, Clone, PartialEq)]
pub struct HaplotypeRisk {
    /// Haplotype bitmask (bit i ⇒ allele 2 at the i-th selected SNP).
    pub haplotype: usize,
    /// Paper-style allele string, e.g. `"221"` for mask `0b011` over 3 SNPs.
    pub label: String,
    /// Expected count among affected chromosomes.
    pub affected_count: f64,
    /// Expected count among unaffected chromosomes.
    pub unaffected_count: f64,
    /// Odds ratio (this haplotype vs all others) with CI.
    pub odds_ratio: OddsRatio,
    /// Two-sided Fisher exact p (on rounded counts).
    pub fisher_p: f64,
}

/// Build per-haplotype risk summaries from an evaluation's table, keeping
/// haplotypes whose pooled expected count is at least `min_count`, sorted
/// by descending odds ratio.
pub fn risk_report(detail: &EvalDetail, min_count: f64) -> Result<Vec<HaplotypeRisk>, StatsError> {
    let table = &detail.table;
    if table.n_rows() != 2 {
        return Err(StatsError::BadTable("risk_report needs a 2×m table".into()));
    }
    let k = detail.affected.k;
    let row_totals = table.row_totals();
    let mut out = Vec::new();
    for h in 0..table.n_cols() {
        let aff = table.get(0, h);
        let una = table.get(1, h);
        if aff + una < min_count {
            continue;
        }
        let or = odds_ratio(aff, row_totals[0] - aff, una, row_totals[1] - una);
        let fisher_p = fisher_exact_2x2(
            aff.round() as u64,
            (row_totals[0] - aff).round() as u64,
            una.round() as u64,
            (row_totals[1] - una).round() as u64,
        );
        // Paper coding: allele 2 where the bit is set, printed low SNP first.
        let label: String = (0..k)
            .map(|i| if h >> i & 1 == 1 { '2' } else { '1' })
            .collect();
        out.push(HaplotypeRisk {
            haplotype: h,
            label,
            affected_count: aff,
            unaffected_count: una,
            odds_ratio: or,
            fisher_p,
        });
    }
    out.sort_by(|a, b| b.odds_ratio.or.total_cmp(&a.odds_ratio.or));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odds_ratio_hand_computed() {
        // a=20 b=10 c=5 d=25 -> OR = (20*25)/(10*5) = 10.
        let or = odds_ratio(20.0, 10.0, 5.0, 25.0);
        assert!((or.or - 10.0).abs() < 1e-12);
        assert!(or.ci_low > 1.0, "strong association excludes 1");
        assert!(or.ci_low < or.or && or.or < or.ci_high);
    }

    #[test]
    fn odds_ratio_null_is_one() {
        let or = odds_ratio(10.0, 10.0, 10.0, 10.0);
        assert!((or.or - 1.0).abs() < 1e-12);
        assert!(or.ci_low < 1.0 && or.ci_high > 1.0);
    }

    #[test]
    fn haldane_correction_on_zero_cells() {
        let or = odds_ratio(10.0, 0.0, 5.0, 5.0);
        assert!(or.or.is_finite() && or.or > 0.0);
        let or = odds_ratio(0.0, 10.0, 10.0, 0.0);
        assert!(or.or.is_finite());
    }

    #[test]
    fn haldane_correction_on_numerically_empty_cells() {
        // EM expected counts leave 1e-14 in empty cells; the correction
        // must still fire or the OR explodes to ~1e15.
        let wild = odds_ratio(35.4, 70.6, 1e-14, 106.0);
        let corrected = odds_ratio(35.4, 70.6, 0.0, 106.0);
        assert!(
            (wild.or - corrected.or).abs() / corrected.or < 1e-9,
            "near-zero cell not corrected: {} vs {}",
            wild.or,
            corrected.or
        );
        assert!(wild.or < 1000.0, "OR exploded: {}", wild.or);
    }

    #[test]
    fn fisher_matches_known_value() {
        // The classic tea-tasting table [[3,1],[1,3]]: two-sided p ≈ 0.4857.
        let p = fisher_exact_2x2(3, 1, 1, 3);
        assert!((p - 0.485_714_285).abs() < 1e-6, "p = {p}");
        // Perfectly balanced: p = 1.
        let p = fisher_exact_2x2(5, 5, 5, 5);
        assert!((p - 1.0).abs() < 1e-9);
        // Strong association: tiny p.
        let p = fisher_exact_2x2(20, 0, 0, 20);
        assert!(p < 1e-9, "p = {p}");
    }

    #[test]
    fn fisher_degenerate_tables() {
        assert_eq!(fisher_exact_2x2(0, 0, 0, 0), 1.0);
        assert!((fisher_exact_2x2(5, 0, 5, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fisher_agrees_with_chi2_asymptotically() {
        // Large balanced-margin table: Fisher and χ² p-values converge.
        use crate::chi2::pearson_chi2;
        use crate::table::ContingencyTable;
        let (a, b, c, d) = (60u64, 40, 45, 55);
        let fisher = fisher_exact_2x2(a, b, c, d);
        let t = ContingencyTable::from_rows(2, 2, vec![a as f64, b as f64, c as f64, d as f64])
            .unwrap();
        let chi = pearson_chi2(&t).p_value;
        assert!((fisher - chi).abs() < 0.02, "fisher {fisher} vs chi2 {chi}");
    }

    #[test]
    fn sidak_adjustment_behaviour() {
        // Single test: unchanged.
        assert_eq!(sidak_adjust(0.01, 1), 0.01);
        assert_eq!(sidak_adjust(0.01, 0), 0.01);
        // Known value: 1 - 0.99^10 ≈ 0.0956.
        assert!((sidak_adjust(0.01, 10) - 0.095_617_925).abs() < 1e-6);
        // Monotone in n; saturates at 1.
        assert!(sidak_adjust(0.01, 100) > sidak_adjust(0.01, 10));
        assert!((sidak_adjust(0.05, 10_000) - 1.0).abs() < 1e-9);
        // Stable for tiny p and huge n (naive pow would lose precision).
        let adj = sidak_adjust(1e-12, 1_000_000);
        assert!((adj - 1e-6).abs() / 1e-6 < 1e-3, "adj = {adj}");
        // Edges.
        assert_eq!(sidak_adjust(0.0, 50), 0.0);
        assert_eq!(sidak_adjust(1.0, 50), 1.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn sidak_rejects_bad_p() {
        let _ = sidak_adjust(1.5, 2);
    }

    #[test]
    fn risk_report_surfaces_planted_haplotype() {
        use crate::fitness::{EvalPipeline, FitnessKind};
        let data = ld_data::synthetic::lille_51(42);
        let pipeline = EvalPipeline::new(&data, FitnessKind::ClumpT1).unwrap();
        let detail = pipeline.evaluate_detailed(&[8, 12, 15]).unwrap();
        let report = risk_report(&detail, 2.0).unwrap();
        assert!(!report.is_empty());
        // The all-2 risk haplotype (mask 0b111, label "222") must appear
        // as a risk entry (OR > 1). Whether it is ranked *first* depends
        // on how sampling noise lands for a given RNG backend, so only
        // its presence and direction are asserted.
        let planted = report
            .iter()
            .find(|r| r.haplotype == 0b111)
            .expect("planted haplotype missing from risk report");
        assert_eq!(planted.label, "222");
        assert!(planted.odds_ratio.or > 1.0, "planted entry {planted:?}");
        // Sorted descending by OR.
        for w in report.windows(2) {
            assert!(w[0].odds_ratio.or >= w[1].odds_ratio.or);
        }
    }

    #[test]
    fn risk_report_filters_rare_haplotypes() {
        use crate::fitness::{EvalPipeline, FitnessKind};
        let data = ld_data::synthetic::lille_51(42);
        let pipeline = EvalPipeline::new(&data, FitnessKind::ClumpT1).unwrap();
        let detail = pipeline.evaluate_detailed(&[8, 12]).unwrap();
        let all = risk_report(&detail, 0.0).unwrap();
        let filtered = risk_report(&detail, 10.0).unwrap();
        assert!(filtered.len() <= all.len());
        for r in &filtered {
            assert!(r.affected_count + r.unaffected_count >= 10.0);
        }
    }
}
