//! # ld-stats — the statistical evaluation substrate
//!
//! The paper evaluates a candidate haplotype with two external programs the
//! biologists supplied: **EH-DIALL** (Terwilliger & Ott's EH, estimating
//! multilocus haplotype frequencies from unphased genotypes by EM) and
//! **CLUMP** (Sham & Curtis 1995, contingency-table association statistics
//! with Monte-Carlo significance). Neither is redistributable, so this crate
//! implements both from their published definitions:
//!
//! * [`special`] — log-gamma / regularized incomplete gamma, the numeric
//!   bedrock for χ² survival functions;
//! * [`table`] — r×c contingency tables (fractional counts allowed, since
//!   EM produces expected counts);
//! * [`chi2`] — Pearson's χ² with degenerate-margin handling;
//! * [`em`] — the EH-DIALL replacement: phase expansion + EM, per-group
//!   (H1) and pooled (H0) fits with log-likelihoods;
//! * [`clump`] — CLUMP's T1–T4 statistics and Monte-Carlo p-values;
//! * [`mc`] — fixed-margin contingency-table sampler;
//! * [`fitness`] — the paper's Figure-3 pipeline glued together: select
//!   SNPs → EH per group → concatenate → CLUMP; this is the GA's
//!   objective function;
//! * [`scratch`] — the reusable per-worker evaluation workspace
//!   ([`EvalScratch`]) behind the allocation-free
//!   [`EvalPipeline::evaluate_with`] kernel.

// The portable build forbids unsafe outright. The `simd` feature relaxes
// the crate level to `deny` so the lane kernels (src/lanes.rs, the only
// module allowed to opt in) can lift bounds checks out of the packed EM
// hot spans; everything else still refuses unsafe.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod assoc;
pub mod chi2;
pub mod clump;
pub mod em;
pub mod error;
pub mod fitness;
pub mod hwe;
mod lanes;
pub mod mc;
pub mod power;
pub mod scratch;
pub mod special;
pub mod table;

pub use assoc::{fisher_exact_2x2, odds_ratio, risk_report, sidak_adjust, OddsRatio};
pub use chi2::Chi2Result;
pub use clump::{ClumpResult, ClumpStatistic};
pub use em::{EmConfig, EmScratch, HaplotypeDist};
pub use error::StatsError;
pub use fitness::{EvalDetail, EvalPipeline, FitnessKind, KernelPath};
pub use hwe::{hwe_chi2, hwe_scan};
pub use scratch::{EvalScratch, ScratchGuard, ScratchPool};
pub use table::ContingencyTable;
