//! EH-DIALL replacement: EM estimation of multilocus haplotype frequencies
//! from unphased genotypes.
//!
//! Terwilliger & Ott's EH program determines "the most probable distribution
//! of alleles in an haplotype according to values of the SNPs" (paper §2.4.1)
//! by maximum likelihood over the 2^k possible haplotypes of k bi-allelic
//! SNPs, using EM to resolve phase ambiguity: an individual heterozygous at
//! `h` of the `k` loci is compatible with `2^(h−1)` distinct haplotype pairs.
//!
//! This module implements that algorithm:
//!
//! 1. genotype vectors are reduced to `(hom2_mask, het_mask)` bit patterns
//!    and identical patterns are pooled (a large constant-factor win);
//! 2. frequencies are initialized from the product of single-SNP allele
//!    frequencies (the linkage-equilibrium start EH uses);
//! 3. E-step: each pattern distributes its count over compatible haplotype
//!    pairs with weights `p_a · p_b` (×2 when `a ≠ b`); M-step: normalize
//!    expected haplotype counts.
//!
//! The per-iteration cost is `Σ_patterns 2^(h_pattern − 1)` — exponential in
//! haplotype size, which is exactly the cost curve the paper's Figure 4
//! reports for its evaluation function.
//!
//! Haplotypes are encoded as bitmasks: bit `i` set ⇔ allele `2` at the i-th
//! SNP of the (ascending) selection.

use crate::error::StatsError;
use crate::lanes;
use ld_data::packed::{compress_even, split_planes, transpose32, EVEN_BITS};
use ld_data::{ColumnMatrix, Genotype, PackedColumns, SnpId};
use std::collections::BTreeMap;

/// Widest supported haplotype (bitmask width and 2^k table size guard).
pub const MAX_HAPLOTYPE_SNPS: usize = 20;

/// EM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmConfig {
    /// Iteration cap.
    pub max_iter: usize,
    /// Convergence threshold on the max absolute frequency change.
    pub tol: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            max_iter: 1000,
            tol: 1e-8,
        }
    }
}

/// Estimated haplotype frequency distribution for one sample.
#[derive(Debug, Clone, PartialEq)]
pub struct HaplotypeDist {
    /// Number of SNPs in the haplotype.
    pub k: usize,
    /// `freqs[h]` is the estimated frequency of haplotype bitmask `h`
    /// (length `2^k`, sums to 1).
    pub freqs: Vec<f64>,
    /// Log-likelihood of the sample at the estimate.
    pub log_likelihood: f64,
    /// EM iterations performed.
    pub iterations: usize,
    /// Individuals actually used (complete genotypes only).
    pub n_individuals: usize,
    /// Expected haplotype counts `2N · p̂`, stored at estimation time so
    /// the contingency-table build borrows instead of allocating.
    expected: Vec<f64>,
}

impl Default for HaplotypeDist {
    fn default() -> Self {
        HaplotypeDist::empty()
    }
}

impl HaplotypeDist {
    /// An empty placeholder, grown in place by the estimators — the out
    /// buffer for [`EmEstimator::estimate_into`].
    pub fn empty() -> Self {
        HaplotypeDist {
            k: 0,
            freqs: Vec::new(),
            log_likelihood: f64::NEG_INFINITY,
            iterations: 0,
            n_individuals: 0,
            expected: Vec::new(),
        }
    }

    /// Recompute the stored expected counts from `freqs`/`n_individuals`
    /// (call after mutating either; the estimators do this themselves).
    pub(crate) fn refresh_expected(&mut self) {
        let scale = 2.0 * self.n_individuals as f64;
        self.expected.clear();
        self.expected.extend(self.freqs.iter().map(|&p| p * scale));
    }

    /// Expected haplotype counts `2N · p̂` — the entries CLUMP's contingency
    /// table is built from. Borrows the stored vector; no allocation.
    pub fn expected_counts_slice(&self) -> &[f64] {
        &self.expected
    }

    /// Expected haplotype counts `2N · p̂`.
    #[deprecated(
        since = "0.1.0",
        note = "allocates a fresh Vec per call; use `expected_counts_slice`"
    )]
    pub fn expected_counts(&self) -> Vec<f64> {
        self.expected.clone()
    }

    /// The most frequent haplotype `(bitmask, frequency)`.
    pub fn mode(&self) -> (usize, f64) {
        self.freqs
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("freqs is non-empty")
    }
}

/// One pooled genotype pattern: which loci are homozygous-mutant and which
/// are heterozygous (the remaining loci are homozygous wild type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Pattern {
    hom2: u32,
    het: u32,
}

impl Pattern {
    /// Reduce a complete genotype vector to a pattern. `None` if any locus
    /// is missing (EH drops incomplete observations).
    fn from_genotypes(gs: &[Genotype]) -> Option<Pattern> {
        let mut hom2 = 0u32;
        let mut het = 0u32;
        for (i, g) in gs.iter().enumerate() {
            match g {
                Genotype::HomA1 => {}
                Genotype::HomA2 => hom2 |= 1 << i,
                Genotype::Het => het |= 1 << i,
                Genotype::Missing => return None,
            }
        }
        Some(Pattern { hom2, het })
    }

    /// Enumerate compatible unordered haplotype pairs `(a, b)`.
    ///
    /// With no heterozygous locus there is exactly one pair `(m, m)`.
    /// Otherwise the lowest het bit is pinned to the first haplotype,
    /// yielding `2^(h−1)` distinct pairs with `a ≠ b`.
    fn pairs(&self) -> PatternPairs {
        PatternPairs::new(*self)
    }

    fn n_het(&self) -> u32 {
        self.het.count_ones()
    }
}

/// Iterator over the haplotype pairs compatible with a pattern.
struct PatternPairs {
    pattern: Pattern,
    /// Bits of `het` other than the pinned lowest bit.
    rest: u32,
    /// Current submask of `rest`; iteration runs the standard submask walk.
    sub: u32,
    done: bool,
}

impl PatternPairs {
    fn new(pattern: Pattern) -> Self {
        let rest = if pattern.het == 0 {
            0
        } else {
            pattern.het & (pattern.het - 1) // clear lowest set bit
        };
        PatternPairs {
            pattern,
            rest,
            sub: 0,
            done: false,
        }
    }
}

impl Iterator for PatternPairs {
    /// `(hap_a, hap_b)` bitmasks, `a == b` only for fully homozygous patterns.
    type Item = (usize, usize);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let p = self.pattern;
        if p.het == 0 {
            self.done = true;
            return Some((p.hom2 as usize, p.hom2 as usize));
        }
        let low = p.het & p.het.wrapping_neg(); // lowest set bit
        let a = p.hom2 | low | self.sub;
        let b = p.hom2 | (p.het & !(low | self.sub));
        // Advance the submask enumeration over `rest`.
        if self.sub == self.rest {
            self.done = true;
        } else {
            self.sub = (self.sub.wrapping_sub(self.rest)) & self.rest;
        }
        Some((a as usize, b as usize))
    }
}

/// EM estimator for multilocus haplotype frequencies.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmEstimator {
    /// Hyper-parameters.
    pub config: EmConfig,
}

impl EmEstimator {
    /// New estimator with explicit configuration.
    pub fn new(config: EmConfig) -> Self {
        EmEstimator { config }
    }

    /// Estimate haplotype frequencies for a sample of genotype vectors,
    /// each of length `k` (one entry per selected SNP, ascending order).
    ///
    /// Individuals with any missing call among the `k` SNPs are dropped,
    /// exactly as EH does.
    #[deprecated(
        since = "0.1.0",
        note = "forces callers to build per-individual Vecs; use \
                `estimate_iter` (borrowed slices) or `estimate_into` \
                (column store, allocation-free)"
    )]
    pub fn estimate(&self, genotypes: &[Vec<Genotype>]) -> Result<HaplotypeDist, StatsError> {
        self.estimate_iter(genotypes.iter().map(|v| v.as_slice()))
    }

    /// Iterator-based variant of [`EmEstimator::estimate`] to avoid forcing
    /// callers into a particular container.
    pub fn estimate_iter<'a, I>(&self, genotypes: I) -> Result<HaplotypeDist, StatsError>
    where
        I: IntoIterator<Item = &'a [Genotype]>,
    {
        let mut k: Option<usize> = None;
        // BTreeMap, not HashMap: the E-step accumulates floating-point
        // contributions in iteration order, and a hash map's per-instance
        // random order would make repeated evaluations of the same
        // haplotype differ in the last ulp — enough to derail the GA's
        // otherwise deterministic trajectory.
        let mut patterns: BTreeMap<Pattern, f64> = BTreeMap::new();
        let mut n_used = 0usize;
        // Single-SNP allele-2 counts for the equilibrium initialization.
        let mut a2_counts: Vec<f64> = Vec::new();

        for gs in genotypes {
            match k {
                None => {
                    k = Some(gs.len());
                    a2_counts = vec![0.0; gs.len()];
                }
                Some(k0) => {
                    if gs.len() != k0 {
                        return Err(StatsError::InvalidParameter(format!(
                            "genotype vectors of mixed lengths: {} vs {k0}",
                            gs.len()
                        )));
                    }
                }
            }
            let Some(p) = Pattern::from_genotypes(gs) else {
                continue;
            };
            n_used += 1;
            *patterns.entry(p).or_insert(0.0) += 1.0;
            for (i, g) in gs.iter().enumerate() {
                a2_counts[i] += g.a2_count().unwrap_or(0) as f64;
            }
        }

        let k = k.ok_or(StatsError::NoObservations {
            context: "EM input",
        })?;
        if k == 0 {
            return Err(StatsError::InvalidParameter(
                "haplotype must contain at least one SNP".into(),
            ));
        }
        if k > MAX_HAPLOTYPE_SNPS {
            return Err(StatsError::HaplotypeTooLarge {
                k,
                max: MAX_HAPLOTYPE_SNPS,
            });
        }
        if n_used == 0 {
            return Err(StatsError::NoObservations {
                context: "EM input (all individuals incomplete)",
            });
        }

        let n_haps = 1usize << k;
        // Linkage-equilibrium start: product of marginal allele frequencies,
        // floored so no haplotype starts at exactly zero.
        let q: Vec<f64> = a2_counts
            .iter()
            .map(|&c| (c / (2.0 * n_used as f64)).clamp(1e-6, 1.0 - 1e-6))
            .collect();
        let mut freqs: Vec<f64> = (0..n_haps)
            .map(|h| {
                (0..k)
                    .map(|i| if h >> i & 1 == 1 { q[i] } else { 1.0 - q[i] })
                    .product()
            })
            .collect();
        normalize(&mut freqs);

        let mut counts = vec![0.0f64; n_haps];
        let mut log_likelihood = f64::NEG_INFINITY;
        let mut iterations = 0usize;
        for iter in 0..self.config.max_iter {
            iterations = iter + 1;
            counts.iter_mut().for_each(|c| *c = 0.0);
            let mut ll = 0.0;
            for (pat, &count) in &patterns {
                // E-step for this pattern: weights over compatible pairs.
                let mut total = 0.0;
                for (a, b) in pat.pairs() {
                    let w = if a == b {
                        freqs[a] * freqs[b]
                    } else {
                        2.0 * freqs[a] * freqs[b]
                    };
                    total += w;
                }
                if total <= 0.0 {
                    // All compatible pairs currently have zero probability;
                    // spread uniformly to recover (defensive — the floored
                    // initialization prevents this on the first pass).
                    let n_pairs = (1usize << pat.n_het().saturating_sub(1)).max(1);
                    let frac = count / n_pairs as f64;
                    for (a, b) in pat.pairs() {
                        counts[a] += frac;
                        counts[b] += frac;
                    }
                    continue;
                }
                ll += count * total.ln();
                for (a, b) in pat.pairs() {
                    let w = if a == b {
                        freqs[a] * freqs[b]
                    } else {
                        2.0 * freqs[a] * freqs[b]
                    };
                    let frac = count * w / total;
                    counts[a] += frac;
                    counts[b] += frac;
                }
            }
            // M-step.
            let scale = 1.0 / (2.0 * n_used as f64);
            let mut max_delta = 0.0f64;
            for (f, &c) in freqs.iter_mut().zip(counts.iter()) {
                let new = c * scale;
                max_delta = max_delta.max((new - *f).abs());
                *f = new;
            }
            log_likelihood = ll;
            if max_delta < self.config.tol {
                break;
            }
        }
        normalize(&mut freqs);
        let mut dist = HaplotypeDist {
            k,
            freqs,
            log_likelihood,
            iterations,
            n_individuals: n_used,
            expected: Vec::new(),
        };
        dist.refresh_expected();
        Ok(dist)
    }

    /// Scratch-workspace estimation over pre-transposed genotype columns.
    ///
    /// `parts` are one or more [`ColumnMatrix`] groups processed in order
    /// (one for a per-group fit, two for the pooled fit of
    /// [`em_lrt`]); `snps` selects the haplotype's columns. All working
    /// memory comes from `scratch` and the result is written into `out`,
    /// so a warmed-up call performs no heap allocation.
    ///
    /// The estimate is bit-identical to [`EmEstimator::estimate_iter`] on
    /// the equivalent row-major input: pattern pooling runs in the same
    /// sorted order (a sorted key vector replaces the `BTreeMap`), the
    /// E-step visits haplotype pairs in the same sequence, and every
    /// floating-point expression is evaluated in the same order. The only
    /// differences are mechanical: pair lists are enumerated once per
    /// estimate instead of re-walked every iteration, and each pair weight
    /// is computed once per iteration instead of twice.
    pub fn estimate_into(
        &self,
        parts: &[&ColumnMatrix],
        snps: &[SnpId],
        scratch: &mut EmScratch,
        out: &mut HaplotypeDist,
    ) -> Result<(), StatsError> {
        let k = snps.len();
        let n_total: usize = parts.iter().map(|p| p.n_individuals()).sum();
        if n_total == 0 {
            return Err(StatsError::NoObservations {
                context: "EM input",
            });
        }
        if k == 0 {
            return Err(StatsError::InvalidParameter(
                "haplotype must contain at least one SNP".into(),
            ));
        }
        if k > MAX_HAPLOTYPE_SNPS {
            return Err(StatsError::HaplotypeTooLarge {
                k,
                max: MAX_HAPLOTYPE_SNPS,
            });
        }
        for part in parts {
            if let Some(&s) = snps.iter().find(|&&s| s >= part.n_snps()) {
                return Err(StatsError::InvalidParameter(format!(
                    "SNP {s} out of range (column store has {})",
                    part.n_snps()
                )));
            }
        }

        let EmScratch {
            masks,
            keys,
            patterns,
            pair_offsets,
            pairs,
            weights,
            a2_counts,
            q,
            counts,
            prev_freqs,
            ..
        } = scratch;

        // Pass 1 (column-major): per-individual (hom2, het) bit patterns.
        // A missing call poisons the individual with a sentinel the later
        // OR-writes cannot clear (k ≤ 20 < 32, so u32::MAX is never a
        // legitimate mask).
        const MISSING: (u32, u32) = (u32::MAX, u32::MAX);
        masks.clear();
        masks.resize(n_total, (0u32, 0u32));
        let mut offset = 0usize;
        for part in parts {
            let n = part.n_individuals();
            for (j, &s) in snps.iter().enumerate() {
                let bit = 1u32 << j;
                for (m, &g) in masks[offset..offset + n].iter_mut().zip(part.column(s)) {
                    match g {
                        Genotype::HomA1 => {}
                        Genotype::HomA2 => m.0 |= bit,
                        Genotype::Het => m.1 |= bit,
                        Genotype::Missing => *m = MISSING,
                    }
                }
            }
            offset += n;
        }

        // Pass 2: single-SNP allele-2 counts over complete individuals
        // only (exact small-integer sums, so accumulation order is free).
        a2_counts.clear();
        a2_counts.resize(k, 0.0);
        let mut offset = 0usize;
        for part in parts {
            let n = part.n_individuals();
            for (j, &s) in snps.iter().enumerate() {
                let mut acc = 0.0f64;
                for (m, &g) in masks[offset..offset + n].iter().zip(part.column(s)) {
                    if m.0 != u32::MAX {
                        acc += g.a2_count().unwrap_or(0) as f64;
                    }
                }
                a2_counts[j] += acc;
            }
            offset += n;
        }

        // Pool identical patterns via a sorted key vector. The packed key
        // `(hom2 << 32) | het` sorts exactly like `Pattern`'s derived
        // `Ord` on `(hom2, het)`, so the E-step below walks patterns in
        // the same order as the legacy `BTreeMap` — the property that
        // keeps repeated evaluations bit-identical.
        keys.clear();
        keys.extend(
            masks
                .iter()
                .filter(|m| m.0 != u32::MAX)
                .map(|m| ((m.0 as u64) << 32) | m.1 as u64),
        );
        let n_used = keys.len();
        if n_used == 0 {
            return Err(StatsError::NoObservations {
                context: "EM input (all individuals incomplete)",
            });
        }
        keys.sort_unstable();
        patterns.clear();
        for &key in keys.iter() {
            let pat = Pattern {
                hom2: (key >> 32) as u32,
                het: key as u32,
            };
            match patterns.last_mut() {
                Some((last, count)) if *last == pat => *count += 1.0,
                _ => patterns.push((pat, 1.0)),
            }
        }

        // Enumerate each pattern's compatible haplotype pairs once, in
        // `PatternPairs` order (the legacy loop re-walks the submask
        // enumeration every iteration).
        pair_offsets.clear();
        pair_offsets.push(0);
        pairs.clear();
        for &(pat, _) in patterns.iter() {
            for (a, b) in pat.pairs() {
                pairs.push((a as u32, b as u32));
            }
            pair_offsets.push(pairs.len());
        }
        weights.clear();
        weights.resize(pairs.len(), 0.0);

        let n_haps = 1usize << k;
        // Linkage-equilibrium start: product of marginal allele
        // frequencies, floored so no haplotype starts at exactly zero.
        q.clear();
        q.extend(
            a2_counts
                .iter()
                .map(|&c| (c / (2.0 * n_used as f64)).clamp(1e-6, 1.0 - 1e-6)),
        );
        let freqs = &mut out.freqs;
        freqs.clear();
        freqs.extend((0..n_haps).map(|h| {
            (0..k)
                .map(|i| if h >> i & 1 == 1 { q[i] } else { 1.0 - q[i] })
                .product::<f64>()
        }));
        normalize(freqs);

        counts.clear();
        counts.resize(n_haps, 0.0);
        let mut log_likelihood = f64::NEG_INFINITY;
        let mut iterations = 0usize;
        for iter in 0..self.config.max_iter {
            iterations = iter + 1;
            // Snapshot the frequencies entering this iteration: if it turns
            // out to be the last, the deferred log-likelihood pass below
            // replays the E-step totals from exactly these values.
            prev_freqs.clear();
            prev_freqs.extend_from_slice(freqs);
            counts.iter_mut().for_each(|c| *c = 0.0);
            for (p, &(pat, count)) in patterns.iter().enumerate() {
                let span = pair_offsets[p]..pair_offsets[p + 1];
                // E-step for this pattern: weights over compatible pairs,
                // computed once and reused by the distribution pass.
                let mut total = 0.0;
                for (w, &(a, b)) in weights[span.clone()].iter_mut().zip(&pairs[span.clone()]) {
                    let (a, b) = (a as usize, b as usize);
                    *w = if a == b {
                        freqs[a] * freqs[b]
                    } else {
                        2.0 * freqs[a] * freqs[b]
                    };
                    total += *w;
                }
                if total <= 0.0 {
                    // All compatible pairs currently have zero probability;
                    // spread uniformly to recover (defensive — the floored
                    // initialization prevents this on the first pass).
                    let n_pairs = (1usize << pat.n_het().saturating_sub(1)).max(1);
                    let frac = count / n_pairs as f64;
                    for &(a, b) in &pairs[span] {
                        counts[a as usize] += frac;
                        counts[b as usize] += frac;
                    }
                    continue;
                }
                for (&w, &(a, b)) in weights[span.clone()].iter().zip(&pairs[span]) {
                    let frac = count * w / total;
                    counts[a as usize] += frac;
                    counts[b as usize] += frac;
                }
            }
            // M-step.
            let scale = 1.0 / (2.0 * n_used as f64);
            let mut max_delta = 0.0f64;
            for (f, &c) in freqs.iter_mut().zip(counts.iter()) {
                let new = c * scale;
                max_delta = max_delta.max((new - *f).abs());
                *f = new;
            }
            if max_delta < self.config.tol {
                break;
            }
        }
        // Deferred log-likelihood: the reference path accumulates
        // `Σ count · ln(total)` on every iteration but only the final
        // iteration's value is ever observed. Recompute that one value from
        // the snapshot of the frequencies that *entered* the final
        // iteration — the identical expressions in the identical order, so
        // the result is bit-for-bit the same while the hot loop above pays
        // no `ln` at all.
        if iterations > 0 {
            let mut ll = 0.0;
            for (p, &(_, count)) in patterns.iter().enumerate() {
                let span = pair_offsets[p]..pair_offsets[p + 1];
                let mut total = 0.0;
                for &(a, b) in &pairs[span] {
                    let (a, b) = (a as usize, b as usize);
                    total += if a == b {
                        prev_freqs[a] * prev_freqs[b]
                    } else {
                        2.0 * prev_freqs[a] * prev_freqs[b]
                    };
                }
                if total > 0.0 {
                    ll += count * total.ln();
                }
            }
            log_likelihood = ll;
        }
        normalize(freqs);
        out.k = k;
        out.log_likelihood = log_likelihood;
        out.iterations = iterations;
        out.n_individuals = n_used;
        out.refresh_expected();
        Ok(())
    }

    /// Packed-kernel estimation over bit-packed genotype lanes — the
    /// word-wide rewrite of [`EmEstimator::estimate_into`].
    ///
    /// Semantically identical to `estimate_into` over the equivalent
    /// [`ColumnMatrix`] parts, and **bit-identical** in every output field
    /// (frequencies, log-likelihood, iteration count, expected counts).
    /// Two things change mechanically:
    ///
    /// * **Front-end** (per call): the per-genotype `match` mask pass
    ///   becomes plane splits + popcounts over 2-bit lanes
    ///   ([`ld_data::packed`]), with a 32×32 bit transpose turning per-SNP
    ///   plane rows into per-individual `(hom2, het)` masks. Allele-2
    ///   counts are exact integer popcounts (f64 addition of small
    ///   integers is exact, so accumulation order is free); pattern keys
    ///   are pooled through the same sort as the scratch path.
    /// * **Iteration loop** (per iteration): haplotypes that appear in no
    ///   pair are compacted away (their frequency is exactly `0.0` from
    ///   iteration 1; iteration 1's convergence test folds their initial
    ///   values back in as `dead_delta`), the E-step scatter is replaced
    ///   by a CSR gather whose slot order replays the legacy scatter's
    ///   accumulation order per haplotype, the `a == b` branch becomes a
    ///   static `{1.0, 2.0}` multiplier, and the frequency snapshot copy
    ///   becomes ping-pong buffers. Each transformation preserves the
    ///   exact per-element floating-point operation sequence; see
    ///   DESIGN.md §3g for the argument, and the golden suites for the
    ///   proof over real data.
    pub fn estimate_packed_into(
        &self,
        parts: &[&PackedColumns],
        snps: &[SnpId],
        scratch: &mut EmScratch,
        out: &mut HaplotypeDist,
    ) -> Result<(), StatsError> {
        let k = snps.len();
        let n_total: usize = parts.iter().map(|p| p.n_individuals()).sum();
        if n_total == 0 {
            return Err(StatsError::NoObservations {
                context: "EM input",
            });
        }
        if k == 0 {
            return Err(StatsError::InvalidParameter(
                "haplotype must contain at least one SNP".into(),
            ));
        }
        if k > MAX_HAPLOTYPE_SNPS {
            return Err(StatsError::HaplotypeTooLarge {
                k,
                max: MAX_HAPLOTYPE_SNPS,
            });
        }
        for part in parts {
            if let Some(&s) = snps.iter().find(|&&s| s >= part.n_snps()) {
                return Err(StatsError::InvalidParameter(format!(
                    "SNP {s} out of range (column store has {})",
                    part.n_snps()
                )));
            }
        }

        let EmScratch {
            keys,
            patterns,
            pair_offsets,
            pairs,
            weights,
            a2_counts,
            q,
            dense_of,
            hap_of,
            ad,
            bd,
            mult,
            pat_counts,
            hap_off,
            cursor,
            slots,
            frac,
            f_a,
            f_b,
            ..
        } = scratch;

        // Word-wide front-end: one pass over the lanes yields, per word of
        // 32 individuals, the three plane masks of every selected SNP.
        // Missing-anywhere individuals (and the missing-padded tail) drop
        // out via one OR-reduction; allele-2 counts are popcounts; the
        // per-individual (hom2, het) pattern masks come from two 32×32
        // bit transposes instead of k probes per individual.
        keys.clear();
        a2_counts.clear();
        a2_counts.resize(k, 0.0);
        for part in parts {
            for wi in 0..part.words_per_snp() {
                let mut het_rows = [0u32; 32];
                let mut hom2_rows = [0u32; 32];
                let mut het_planes = [0u64; MAX_HAPLOTYPE_SNPS];
                let mut hom2_planes = [0u64; MAX_HAPLOTYPE_SNPS];
                let mut miss_any = 0u64;
                for (j, &s) in snps.iter().enumerate() {
                    let (het, hom2, miss) = split_planes(part.snp_lanes(s)[wi]);
                    het_planes[j] = het;
                    hom2_planes[j] = hom2;
                    miss_any |= miss;
                    het_rows[j] = compress_even(het);
                    hom2_rows[j] = compress_even(hom2);
                }
                // Individuals complete across all k SNPs (tail padding is
                // missing-coded, so it is excluded here for free).
                let called = EVEN_BITS & !miss_any;
                for (j, a2) in a2_counts.iter_mut().enumerate() {
                    *a2 += (2 * (hom2_planes[j] & called).count_ones()
                        + (het_planes[j] & called).count_ones()) as f64;
                }
                transpose32(&mut het_rows);
                transpose32(&mut hom2_rows);
                let mut live = compress_even(called);
                while live != 0 {
                    let i = live.trailing_zeros() as usize;
                    live &= live - 1;
                    keys.push(((hom2_rows[i] as u64) << 32) | het_rows[i] as u64);
                }
            }
        }
        let n_used = keys.len();
        if n_used == 0 {
            return Err(StatsError::NoObservations {
                context: "EM input (all individuals incomplete)",
            });
        }

        // Pooling and pair enumeration: same sorted-key order as the
        // scratch path (and the legacy BTreeMap).
        keys.sort_unstable();
        patterns.clear();
        for &key in keys.iter() {
            let pat = Pattern {
                hom2: (key >> 32) as u32,
                het: key as u32,
            };
            match patterns.last_mut() {
                Some((last, count)) if *last == pat => *count += 1.0,
                _ => patterns.push((pat, 1.0)),
            }
        }
        pair_offsets.clear();
        pair_offsets.push(0);
        pairs.clear();
        for &(pat, _) in patterns.iter() {
            for (a, b) in pat.pairs() {
                pairs.push((a as u32, b as u32));
            }
            pair_offsets.push(pairs.len());
        }
        pat_counts.clear();
        pat_counts.extend(patterns.iter().map(|&(_, c)| c));

        // Dense remap of live haplotypes in first-touch (pair-walk) order,
        // plus the static per-pair multiplier.
        let np = pairs.len();
        let n_haps = 1usize << k;
        dense_of.clear();
        dense_of.resize(n_haps, u32::MAX);
        hap_of.clear();
        ad.clear();
        ad.resize(np, 0);
        bd.clear();
        bd.resize(np, 0);
        mult.clear();
        mult.resize(np, 0.0);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let da = &mut dense_of[a as usize];
            if *da == u32::MAX {
                *da = hap_of.len() as u32;
                hap_of.push(a);
            }
            ad[i] = *da;
            let db = &mut dense_of[b as usize];
            if *db == u32::MAX {
                *db = hap_of.len() as u32;
                hap_of.push(b);
            }
            bd[i] = *db;
            mult[i] = if a == b { 1.0 } else { 2.0 };
        }
        let nl = hap_of.len();

        // CSR of the fraction slots feeding each dense haplotype, laid out
        // in the legacy scatter's accumulation order (pairs ascending,
        // a-side before b-side), so the gather below adds the same values
        // in the same sequence.
        hap_off.clear();
        hap_off.resize(nl + 1, 0);
        for i in 0..np {
            hap_off[ad[i] as usize + 1] += 1;
            hap_off[bd[i] as usize + 1] += 1;
        }
        for d in 0..nl {
            hap_off[d + 1] += hap_off[d];
        }
        cursor.clear();
        cursor.extend_from_slice(&hap_off[..nl]);
        slots.clear();
        slots.resize(2 * np, 0);
        for i in 0..np {
            let a = ad[i] as usize;
            slots[cursor[a] as usize] = i as u32;
            cursor[a] += 1;
            let b = bd[i] as usize;
            slots[cursor[b] as usize] = i as u32;
            cursor[b] += 1;
        }

        // Linkage-equilibrium start over the full 2^k table — identical
        // expressions to the scratch path, normalized once here (and once
        // more after the loop, exactly like the reference).
        q.clear();
        q.extend(
            a2_counts
                .iter()
                .map(|&c| (c / (2.0 * n_used as f64)).clamp(1e-6, 1.0 - 1e-6)),
        );
        out.freqs.clear();
        out.freqs.extend((0..n_haps).map(|h| {
            (0..k)
                .map(|i| if h >> i & 1 == 1 { q[i] } else { 1.0 - q[i] })
                .product::<f64>()
        }));
        normalize(&mut out.freqs);

        // Haplotypes in no pair receive zero expected count, so from
        // iteration 1 on their frequency is exactly 0.0 and they drop out
        // of the arithmetic entirely. Iteration 1's convergence test must
        // still see their |0 − f_init| change — fold it in as one scalar.
        let mut dead_delta = 0.0f64;
        for (h, &fh) in out.freqs.iter().enumerate() {
            if dense_of[h] == u32::MAX {
                dead_delta = dead_delta.max(fh);
            }
        }
        f_a.clear();
        f_a.extend(hap_of.iter().map(|&h| out.freqs[h as usize]));
        f_b.clear();
        f_b.resize(nl, 0.0);
        weights.clear();
        weights.resize(np, 0.0);
        frac.clear();
        frac.resize(np, 0.0);

        let scale = 1.0 / (2.0 * n_used as f64);
        let mut iterations = 0usize;
        // `a_feeds`: f_a holds the frequencies entering the next iteration.
        let mut a_feeds = true;
        for it in 0..self.config.max_iter {
            iterations = it + 1;
            let (f, fnew) = if a_feeds {
                (&f_a[..], &mut f_b[..])
            } else {
                (&f_b[..], &mut f_a[..])
            };
            // E-step: per-pattern weight + fraction passes (lane kernels).
            for (pi, &count) in pat_counts.iter().enumerate() {
                let (s, e) = (pair_offsets[pi], pair_offsets[pi + 1]);
                let total = lanes::weight_pass(weights, f, ad, bd, mult, s, e);
                if total <= 0.0 {
                    // All compatible pairs currently have zero probability;
                    // spread uniformly to recover (defensive — the floored
                    // initialization prevents this on the first pass). The
                    // span length equals the legacy `(1 << (h−1)).max(1)`.
                    let fr = count / (e - s) as f64;
                    frac[s..e].fill(fr);
                } else {
                    lanes::frac_pass(frac, weights, count, total, s, e);
                }
            }
            // M-step fused with the CSR gather, two independent max
            // accumulators (f64 max is associative and commutative for
            // the non-NaN values here, so the reduction shape is free).
            let mut m0 = 0.0f64;
            let mut m1 = 0.0f64;
            let mut d = 0usize;
            while d + 2 <= nl {
                let acc0 =
                    lanes::gather_sum(frac, slots, hap_off[d] as usize, hap_off[d + 1] as usize);
                let acc1 = lanes::gather_sum(
                    frac,
                    slots,
                    hap_off[d + 1] as usize,
                    hap_off[d + 2] as usize,
                );
                let n0 = acc0 * scale;
                m0 = m0.max((n0 - f[d]).abs());
                fnew[d] = n0;
                let n1 = acc1 * scale;
                m1 = m1.max((n1 - f[d + 1]).abs());
                fnew[d + 1] = n1;
                d += 2;
            }
            let mut max_delta = m0.max(m1);
            while d < nl {
                let acc =
                    lanes::gather_sum(frac, slots, hap_off[d] as usize, hap_off[d + 1] as usize);
                let n0 = acc * scale;
                max_delta = max_delta.max((n0 - f[d]).abs());
                fnew[d] = n0;
                d += 1;
            }
            if it == 0 {
                max_delta = max_delta.max(dead_delta);
            }
            a_feeds = !a_feeds;
            if max_delta < self.config.tol {
                break;
            }
        }

        // Deferred log-likelihood from the buffer that *fed* the final
        // iteration (the ping-pong partner), then expansion of the live
        // frequencies back into the full 2^k table. Dead haplotypes are
        // exactly 0.0, and `x + 0.0 == x` for the non-negative values
        // here, so the full-table normalize sums the same bits as the
        // reference.
        let mut log_likelihood = f64::NEG_INFINITY;
        if iterations > 0 {
            let (f_fin, prev) = if a_feeds {
                (&f_a[..], &f_b[..])
            } else {
                (&f_b[..], &f_a[..])
            };
            let mut ll = 0.0;
            for (pi, &count) in pat_counts.iter().enumerate() {
                let (s, e) = (pair_offsets[pi], pair_offsets[pi + 1]);
                let mut total = 0.0;
                for i in s..e {
                    total += (mult[i] * prev[ad[i] as usize]) * prev[bd[i] as usize];
                }
                if total > 0.0 {
                    ll += count * total.ln();
                }
            }
            log_likelihood = ll;
            out.freqs.iter_mut().for_each(|x| *x = 0.0);
            for (d, &h) in hap_of.iter().enumerate() {
                out.freqs[h as usize] = f_fin[d];
            }
        }
        normalize(&mut out.freqs);
        out.k = k;
        out.log_likelihood = log_likelihood;
        out.iterations = iterations;
        out.n_individuals = n_used;
        out.refresh_expected();
        Ok(())
    }
}

/// Reusable working memory for [`EmEstimator::estimate_into`]: per-call
/// buffers that clear-and-reuse instead of reallocating. One `EmScratch`
/// serves any haplotype size; buffers grow to the high-water mark and
/// stay there.
#[derive(Debug, Default)]
pub struct EmScratch {
    /// Per-individual `(hom2, het)` masks; `(u32::MAX, u32::MAX)` marks an
    /// incomplete individual.
    masks: Vec<(u32, u32)>,
    /// Packed `(hom2 << 32) | het` keys of complete individuals, sorted to
    /// pool identical patterns deterministically.
    keys: Vec<u64>,
    /// Pooled patterns with their multiplicities.
    patterns: Vec<(Pattern, f64)>,
    /// `pairs[pair_offsets[p]..pair_offsets[p + 1]]` are pattern `p`'s
    /// compatible haplotype pairs.
    pair_offsets: Vec<usize>,
    /// Flattened compatible-pair list across all patterns.
    pairs: Vec<(u32, u32)>,
    /// Per-pair E-step weights, recomputed each iteration but shared
    /// between the normalization and distribution passes.
    weights: Vec<f64>,
    /// Single-SNP allele-2 counts (equilibrium initialization).
    a2_counts: Vec<f64>,
    /// Clamped marginal allele-2 frequencies.
    q: Vec<f64>,
    /// Expected haplotype counts accumulated by the E-step.
    counts: Vec<f64>,
    /// Frequencies entering the current iteration, kept so the final
    /// log-likelihood can be recomputed once after convergence instead of
    /// paying a `ln` per pattern on every iteration.
    prev_freqs: Vec<f64>,

    // ── packed-kernel buffers ([`EmEstimator::estimate_packed_into`]) ──
    /// Dense live-haplotype index per original bitmask (`2^k` table,
    /// `u32::MAX` = haplotype appears in no pair).
    dense_of: Vec<u32>,
    /// Original haplotype bitmask per dense index (inverse of `dense_of`).
    hap_of: Vec<u32>,
    /// Dense a-side haplotype index of each pair.
    ad: Vec<u32>,
    /// Dense b-side haplotype index of each pair.
    bd: Vec<u32>,
    /// Static pair multiplier: `1.0` when `a == b`, `2.0` otherwise
    /// (`(mult · fa) · fb` reproduces the legacy branch bit-for-bit).
    mult: Vec<f64>,
    /// Pattern multiplicities, flat (parallel to `patterns`).
    pat_counts: Vec<f64>,
    /// CSR offsets: `slots[hap_off[d]..hap_off[d + 1]]` are the fraction
    /// slots feeding dense haplotype `d`, in legacy scatter order.
    hap_off: Vec<u32>,
    /// CSR build cursor (one write head per dense haplotype).
    cursor: Vec<u32>,
    /// Flat CSR slot list: indices into `frac`, two per pair.
    slots: Vec<u32>,
    /// Per-pair posterior fractions `count · w / total`.
    frac: Vec<f64>,
    /// Ping-pong live-haplotype frequency buffer A.
    f_a: Vec<f64>,
    /// Ping-pong live-haplotype frequency buffer B.
    f_b: Vec<f64>,
}

impl EmScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

fn normalize(v: &mut [f64]) {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        v.iter_mut().for_each(|x| *x /= s);
    }
}

/// Likelihood-ratio test of allelic association between two groups
/// (EH's H1 "with association" vs H0 "without"): fits each group and the
/// pooled sample, then `Λ = 2 (LL_A + LL_B − LL_pooled)` with
/// `2^k − 1` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmLrt {
    /// The Λ statistic.
    pub statistic: f64,
    /// Degrees of freedom.
    pub df: f64,
    /// Asymptotic p-value.
    pub p_value: f64,
    /// Group-A fit log-likelihood.
    pub ll_a: f64,
    /// Group-B fit log-likelihood.
    pub ll_b: f64,
    /// Pooled fit log-likelihood.
    pub ll_pooled: f64,
}

/// Run the EM likelihood-ratio association test between two genotype samples.
pub fn em_lrt(
    estimator: &EmEstimator,
    group_a: &[Vec<Genotype>],
    group_b: &[Vec<Genotype>],
) -> Result<EmLrt, StatsError> {
    let fit_a = estimator.estimate_iter(group_a.iter().map(|v| v.as_slice()))?;
    let fit_b = estimator.estimate_iter(group_b.iter().map(|v| v.as_slice()))?;
    let pooled =
        estimator.estimate_iter(group_a.iter().chain(group_b.iter()).map(|v| v.as_slice()))?;
    let statistic =
        (2.0 * (fit_a.log_likelihood + fit_b.log_likelihood - pooled.log_likelihood)).max(0.0);
    let df = ((1usize << fit_a.k) - 1) as f64;
    Ok(EmLrt {
        statistic,
        df,
        p_value: crate::special::chi2_sf(statistic, df),
        ll_a: fit_a.log_likelihood,
        ll_b: fit_b.log_likelihood,
        ll_pooled: pooled.log_likelihood,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_data::Genotype as G;

    fn est() -> EmEstimator {
        EmEstimator::default()
    }

    /// Slice-based fit (the non-deprecated replacement for `estimate`).
    fn fit(e: &EmEstimator, gs: &[Vec<G>]) -> Result<HaplotypeDist, StatsError> {
        e.estimate_iter(gs.iter().map(|v| v.as_slice()))
    }

    /// Build the column store of a row-per-individual genotype sample.
    fn columns(gs: &[Vec<G>]) -> ColumnMatrix {
        let k = gs.first().map_or(0, |g| g.len());
        let flat: Vec<G> = gs.iter().flatten().copied().collect();
        let m = ld_data::GenotypeMatrix::from_rows(gs.len(), k, flat).unwrap();
        ColumnMatrix::from_matrix(&m)
    }

    /// Scratch-path fit over the same sample.
    fn fit_into(e: &EmEstimator, gs: &[Vec<G>]) -> Result<HaplotypeDist, StatsError> {
        let cols = columns(gs);
        let snps: Vec<usize> = (0..cols.n_snps()).collect();
        let mut scratch = EmScratch::new();
        let mut out = HaplotypeDist::empty();
        e.estimate_into(&[&cols], &snps, &mut scratch, &mut out)?;
        Ok(out)
    }

    #[test]
    fn pattern_pair_counts() {
        // Fully homozygous: one pair.
        let p = Pattern {
            hom2: 0b101,
            het: 0,
        };
        assert_eq!(p.pairs().count(), 1);
        // One het locus: one pair (phase irrelevant).
        let p = Pattern { hom2: 0, het: 0b1 };
        assert_eq!(p.pairs().count(), 1);
        // h het loci: 2^(h-1) pairs.
        for h in 1..6u32 {
            let p = Pattern {
                hom2: 0,
                het: (1 << h) - 1,
            };
            assert_eq!(p.pairs().count(), 1 << (h - 1), "h = {h}");
        }
    }

    #[test]
    fn pattern_pairs_are_complementary() {
        let p = Pattern {
            hom2: 0b1000,
            het: 0b0111,
        };
        for (a, b) in p.pairs() {
            // Union of the two haplotypes restricted to het bits must be het.
            assert_eq!((a ^ b) as u32, p.het);
            // Both carry the hom2 bits.
            assert_eq!(a as u32 & p.hom2, p.hom2);
            assert_eq!(b as u32 & p.hom2, p.hom2);
        }
        // Pairs are distinct as unordered pairs.
        let mut seen = std::collections::HashSet::new();
        for (a, b) in p.pairs() {
            let key = (a.min(b), a.max(b));
            assert!(seen.insert(key));
        }
    }

    #[test]
    fn homozygous_sample_is_deterministic() {
        // All individuals 2/2 at SNP0 and 1/1 at SNP1 -> haplotype 0b01 freq 1.
        let gs = vec![vec![G::HomA2, G::HomA1]; 10];
        let d = fit(&est(), &gs).unwrap();
        assert_eq!(d.k, 2);
        assert!((d.freqs[0b01] - 1.0).abs() < 1e-9);
        assert_eq!(d.n_individuals, 10);
        let (mode, f) = d.mode();
        assert_eq!(mode, 0b01);
        assert!(f > 0.99);
    }

    #[test]
    fn freqs_form_a_simplex() {
        let gs = vec![
            vec![G::Het, G::Het, G::HomA1],
            vec![G::HomA2, G::Het, G::Het],
            vec![G::Het, G::HomA1, G::HomA2],
            vec![G::HomA1, G::HomA1, G::HomA1],
        ];
        let d = fit(&est(), &gs).unwrap();
        let sum: f64 = d.freqs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(d.freqs.iter().all(|&f| (0.0..=1.0).contains(&f)));
        assert_eq!(d.freqs.len(), 8);
    }

    #[test]
    fn em_resolves_phase_from_homozygotes() {
        // Two-SNP sample dominated by 11/11 and 22/22 homozygotes plus some
        // double hets. The homozygote evidence makes coupling haplotypes
        // (00 and 11) far more likely than repulsion (01 and 10).
        let mut gs = vec![vec![G::HomA1, G::HomA1]; 20];
        gs.extend(vec![vec![G::HomA2, G::HomA2]; 20]);
        gs.extend(vec![vec![G::Het, G::Het]; 10]);
        let d = fit(&est(), &gs).unwrap();
        let coupling = d.freqs[0b00] + d.freqs[0b11];
        let repulsion = d.freqs[0b01] + d.freqs[0b10];
        assert!(
            coupling > 0.95 && repulsion < 0.05,
            "coupling {coupling} repulsion {repulsion}"
        );
    }

    #[test]
    fn equilibrium_sample_stays_at_equilibrium() {
        // Independent loci with p(A2) = 0.5 each: double-het individuals
        // should split evenly; all four haplotypes ≈ 0.25.
        let mut gs = Vec::new();
        for a in [G::HomA1, G::Het, G::HomA2] {
            for b in [G::HomA1, G::Het, G::HomA2] {
                // Hardy-Weinberg multiplicities for p = 0.5: 1-2-1 pattern.
                let wa = if a == G::Het { 2 } else { 1 };
                let wb = if b == G::Het { 2 } else { 1 };
                for _ in 0..(wa * wb) {
                    gs.push(vec![a, b]);
                }
            }
        }
        let d = fit(&est(), &gs).unwrap();
        for h in 0..4 {
            assert!((d.freqs[h] - 0.25).abs() < 1e-6, "h={h} f={}", d.freqs[h]);
        }
    }

    #[test]
    fn missing_individuals_are_dropped() {
        let gs = vec![
            vec![G::HomA2, G::HomA2],
            vec![G::Missing, G::HomA1],
            vec![G::HomA2, G::HomA2],
        ];
        let d = fit(&est(), &gs).unwrap();
        assert_eq!(d.n_individuals, 2);
    }

    #[test]
    fn error_cases() {
        // Empty input.
        assert!(matches!(
            fit(&est(), &[]),
            Err(StatsError::NoObservations { .. })
        ));
        // All missing.
        let gs = vec![vec![G::Missing]; 3];
        assert!(matches!(
            fit(&est(), &gs),
            Err(StatsError::NoObservations { .. })
        ));
        // Mixed lengths.
        let gs = vec![vec![G::Het], vec![G::Het, G::Het]];
        assert!(matches!(
            fit(&est(), &gs),
            Err(StatsError::InvalidParameter(_))
        ));
        // Zero-length haplotype.
        let gs = vec![vec![]];
        assert!(matches!(
            fit(&est(), &gs),
            Err(StatsError::InvalidParameter(_))
        ));
        // Too wide.
        let gs = vec![vec![G::HomA1; MAX_HAPLOTYPE_SNPS + 1]];
        assert!(matches!(
            fit(&est(), &gs),
            Err(StatsError::HaplotypeTooLarge { .. })
        ));
    }

    #[test]
    fn expected_counts_scale() {
        let gs = vec![vec![G::HomA2]; 7];
        let d = fit(&est(), &gs).unwrap();
        let c = d.expected_counts_slice();
        assert!((c[1] - 14.0).abs() < 1e-6);
        assert!(c[0].abs() < 1e-6);
        // The deprecated allocating wrapper returns the same counts.
        #[allow(deprecated)]
        let owned = d.expected_counts();
        assert_eq!(owned.as_slice(), c);
    }

    #[test]
    fn scratch_fit_is_bit_identical_to_iter_fit() {
        // The column/scratch path must reproduce the legacy estimate to
        // the last ulp — sorted-vec pooling matches BTreeMap order, and
        // the cached-weight E-step evaluates the same expressions.
        let samples: Vec<Vec<Vec<G>>> = vec![
            vec![vec![G::HomA2, G::HomA1]; 10],
            vec![
                vec![G::Het, G::Het, G::HomA1],
                vec![G::HomA2, G::Het, G::Het],
                vec![G::Het, G::HomA1, G::HomA2],
                vec![G::Het, G::Het, G::Het],
                vec![G::HomA1, G::HomA2, G::Het],
            ],
            vec![
                vec![G::HomA2, G::HomA2, G::Het, G::Het],
                vec![G::Missing, G::HomA1, G::Het, G::HomA2],
                vec![G::Het, G::Het, G::Het, G::Het],
                vec![G::HomA1, G::HomA1, G::HomA2, G::Het],
                vec![G::HomA2, G::Het, G::HomA1, G::HomA1],
                vec![G::Het, G::HomA2, G::Het, G::HomA1],
            ],
        ];
        for gs in &samples {
            let a = fit(&est(), gs).unwrap();
            let b = fit_into(&est(), gs).unwrap();
            assert_eq!(a.k, b.k);
            assert_eq!(a.n_individuals, b.n_individuals);
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(
                a.log_likelihood.to_bits(),
                b.log_likelihood.to_bits(),
                "log-likelihood diverged"
            );
            for (x, y) in a.freqs.iter().zip(&b.freqs) {
                assert_eq!(x.to_bits(), y.to_bits(), "freqs diverged");
            }
            for (x, y) in a
                .expected_counts_slice()
                .iter()
                .zip(b.expected_counts_slice())
            {
                assert_eq!(x.to_bits(), y.to_bits(), "expected counts diverged");
            }
        }
    }

    #[test]
    fn scratch_fit_reuses_buffers_across_sizes() {
        // One scratch serves interleaved haplotype widths without stale
        // state: each call must equal a fresh-scratch call bit-for-bit.
        let cols = columns(&[
            vec![G::Het, G::HomA2, G::Het, G::HomA1, G::Het],
            vec![G::HomA1, G::Het, G::HomA2, G::Het, G::HomA2],
            vec![G::HomA2, G::Het, G::Het, G::Het, G::HomA1],
            vec![G::Het, G::HomA1, G::HomA1, G::HomA2, G::Het],
        ]);
        let e = est();
        let mut shared = EmScratch::new();
        let mut out = HaplotypeDist::empty();
        for snps in [
            vec![0usize, 1, 2, 3, 4],
            vec![1, 3],
            vec![0, 2, 4],
            vec![2],
            vec![0, 1, 2, 3],
        ] {
            e.estimate_into(&[&cols], &snps, &mut shared, &mut out)
                .unwrap();
            let mut fresh_scratch = EmScratch::new();
            let mut fresh = HaplotypeDist::empty();
            e.estimate_into(&[&cols], &snps, &mut fresh_scratch, &mut fresh)
                .unwrap();
            assert_eq!(out, fresh, "scratch reuse leaked state for {snps:?}");
        }
    }

    #[test]
    fn scratch_pooled_fit_matches_chained_iter_fit() {
        // Two parts concatenate exactly like the legacy chained iterator
        // (the em_lrt pooled-fit shape).
        let a = vec![
            vec![G::HomA2, G::Het],
            vec![G::Het, G::Het],
            vec![G::HomA1, G::HomA2],
        ];
        let b = vec![vec![G::Het, G::HomA1], vec![G::HomA2, G::HomA2]];
        let legacy = est()
            .estimate_iter(a.iter().chain(b.iter()).map(|v| v.as_slice()))
            .unwrap();
        let (ca, cb) = (columns(&a), columns(&b));
        let mut scratch = EmScratch::new();
        let mut out = HaplotypeDist::empty();
        est()
            .estimate_into(&[&ca, &cb], &[0, 1], &mut scratch, &mut out)
            .unwrap();
        assert_eq!(legacy, out);
    }

    #[test]
    fn scratch_fit_error_cases() {
        let e = est();
        let mut scratch = EmScratch::new();
        let mut out = HaplotypeDist::empty();
        // No individuals at all.
        let empty = columns(&[]);
        assert!(matches!(
            e.estimate_into(&[&empty], &[0], &mut scratch, &mut out),
            Err(StatsError::NoObservations { .. })
        ));
        // All individuals incomplete.
        let missing = columns(&[vec![G::Missing], vec![G::Missing]]);
        assert!(matches!(
            e.estimate_into(&[&missing], &[0], &mut scratch, &mut out),
            Err(StatsError::NoObservations { .. })
        ));
        // Zero-width haplotype.
        let cols = columns(&[vec![G::Het]]);
        assert!(matches!(
            e.estimate_into(&[&cols], &[], &mut scratch, &mut out),
            Err(StatsError::InvalidParameter(_))
        ));
        // Out-of-range SNP.
        assert!(matches!(
            e.estimate_into(&[&cols], &[3], &mut scratch, &mut out),
            Err(StatsError::InvalidParameter(_))
        ));
        // Too wide.
        let wide = columns(&[vec![G::HomA1; MAX_HAPLOTYPE_SNPS + 1]]);
        let snps: Vec<usize> = (0..MAX_HAPLOTYPE_SNPS + 1).collect();
        assert!(matches!(
            e.estimate_into(&[&wide], &snps, &mut scratch, &mut out),
            Err(StatsError::HaplotypeTooLarge { .. })
        ));
    }

    /// Packed-path fit over the same sample (full estimator pipeline:
    /// pack → word-wide front-end → compacted EM loop).
    fn fit_packed(e: &EmEstimator, gs: &[Vec<G>]) -> Result<HaplotypeDist, StatsError> {
        let cols = columns(gs);
        let packed = ld_data::PackedColumns::from_columns(&cols);
        let snps: Vec<usize> = (0..cols.n_snps()).collect();
        let mut scratch = EmScratch::new();
        let mut out = HaplotypeDist::empty();
        e.estimate_packed_into(&[&packed], &snps, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Deterministic genotype sample from a splitmix-style LCG, including
    /// occasional missing calls when `missing` is set.
    fn lcg_sample(mut state: u64, n: usize, k: usize, missing: bool) -> Vec<Vec<G>> {
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        (0..n)
            .map(|_| {
                (0..k)
                    .map(|_| match next() % if missing { 7 } else { 6 } {
                        0 | 1 => G::HomA1,
                        2 | 3 => G::Het,
                        4 | 5 => G::HomA2,
                        _ => G::Missing,
                    })
                    .collect()
            })
            .collect()
    }

    /// Assert every output field of two fits matches to the last bit.
    fn assert_bit_identical(a: &HaplotypeDist, b: &HaplotypeDist, what: &str) {
        assert_eq!(a.k, b.k, "{what}: k");
        assert_eq!(a.n_individuals, b.n_individuals, "{what}: n");
        assert_eq!(a.iterations, b.iterations, "{what}: iterations");
        assert_eq!(
            a.log_likelihood.to_bits(),
            b.log_likelihood.to_bits(),
            "{what}: log-likelihood diverged"
        );
        for (x, y) in a.freqs.iter().zip(&b.freqs) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: freqs diverged");
        }
        for (x, y) in a
            .expected_counts_slice()
            .iter()
            .zip(b.expected_counts_slice())
        {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: expected diverged");
        }
    }

    #[test]
    fn packed_fit_small_sample_miri() {
        // Miri-sized: one word of individuals, one complete + one partial
        // sample, checked bit-for-bit against both reference paths.
        let gs = vec![
            vec![G::Het, G::HomA2, G::Het],
            vec![G::HomA1, G::Missing, G::Het],
            vec![G::HomA2, G::Het, G::HomA1],
            vec![G::Het, G::Het, G::Het],
        ];
        let legacy = fit(&est(), &gs).unwrap();
        let scratch = fit_into(&est(), &gs).unwrap();
        let packed = fit_packed(&est(), &gs).unwrap();
        assert_bit_identical(&legacy, &scratch, "legacy vs scratch");
        assert_bit_identical(&scratch, &packed, "scratch vs packed");
    }

    #[test]
    fn packed_fit_is_bit_identical_to_scratch_fit() {
        // Word-boundary coverage: n below, at, just above and well above
        // the 32-individuals-per-lane width, widths up to 8, with and
        // without missing calls. Every fit must match the scratch path
        // (itself pinned to the legacy path above) to the last ulp.
        let mut cases: Vec<Vec<Vec<G>>> = vec![
            vec![vec![G::HomA2, G::HomA1]; 10],
            vec![
                vec![G::HomA2, G::HomA2, G::Het, G::Het],
                vec![G::Missing, G::HomA1, G::Het, G::HomA2],
                vec![G::Het, G::Het, G::Het, G::Het],
                vec![G::HomA1, G::HomA1, G::HomA2, G::Het],
                vec![G::HomA2, G::Het, G::HomA1, G::HomA1],
                vec![G::Het, G::HomA2, G::Het, G::HomA1],
            ],
        ];
        for (seed, n, k, missing) in [
            (1u64, 31, 3, false),
            (2, 32, 4, true),
            (3, 33, 5, true),
            (4, 100, 6, true),
            (5, 64, 7, false),
            (6, 97, 8, true),
        ] {
            cases.push(lcg_sample(seed, n, k, missing));
        }
        for gs in &cases {
            let a = fit_into(&est(), gs).unwrap();
            let b = fit_packed(&est(), gs).unwrap();
            assert_bit_identical(&a, &b, &format!("n={} k={}", gs.len(), gs[0].len()));
        }
    }

    #[test]
    fn packed_fit_zero_iteration_cap_matches_scratch() {
        // max_iter = 0 leaves the linkage-equilibrium start in place (the
        // double normalize must replay identically) with LL = -inf.
        let e = EmEstimator::new(EmConfig {
            max_iter: 0,
            tol: 1e-8,
        });
        let gs = lcg_sample(11, 40, 4, true);
        let cols = columns(&gs);
        let packed = ld_data::PackedColumns::from_columns(&cols);
        let mut scratch = EmScratch::new();
        let (mut a, mut b) = (HaplotypeDist::empty(), HaplotypeDist::empty());
        e.estimate_into(&[&cols], &[0, 1, 2, 3], &mut scratch, &mut a)
            .unwrap();
        e.estimate_packed_into(&[&packed], &[0, 1, 2, 3], &mut scratch, &mut b)
            .unwrap();
        assert_eq!(a.iterations, 0);
        assert!(a.log_likelihood.is_infinite());
        assert_bit_identical(&a, &b, "max_iter = 0");
    }

    #[test]
    fn packed_pooled_fit_matches_scratch_pooled() {
        // Two unequal parts (part boundaries off the 32-lane grid) pool
        // exactly like the column-store path.
        let ga = lcg_sample(21, 37, 3, true);
        let gb = lcg_sample(22, 18, 3, true);
        let (ca, cb) = (columns(&ga), columns(&gb));
        let (pa, pb) = (
            ld_data::PackedColumns::from_columns(&ca),
            ld_data::PackedColumns::from_columns(&cb),
        );
        let mut scratch = EmScratch::new();
        let (mut a, mut b) = (HaplotypeDist::empty(), HaplotypeDist::empty());
        est()
            .estimate_into(&[&ca, &cb], &[0, 1, 2], &mut scratch, &mut a)
            .unwrap();
        est()
            .estimate_packed_into(&[&pa, &pb], &[0, 1, 2], &mut scratch, &mut b)
            .unwrap();
        assert_bit_identical(&a, &b, "pooled two-part fit");
    }

    #[test]
    fn packed_fit_reuses_buffers_across_sizes() {
        // One scratch serves interleaved widths and alternates with the
        // column-store path; every call must equal a fresh-scratch call.
        let gs = lcg_sample(31, 45, 5, true);
        let cols = columns(&gs);
        let packed = ld_data::PackedColumns::from_columns(&cols);
        let e = est();
        let mut shared = EmScratch::new();
        let mut out = HaplotypeDist::empty();
        for snps in [
            vec![0usize, 1, 2, 3, 4],
            vec![1, 3],
            vec![0, 2, 4],
            vec![2],
            vec![0, 1, 2, 3],
        ] {
            e.estimate_packed_into(&[&packed], &snps, &mut shared, &mut out)
                .unwrap();
            // Interleave a scratch-path call to dirty the shared buffers.
            let mut dirty = HaplotypeDist::empty();
            e.estimate_into(&[&cols], &snps, &mut shared, &mut dirty)
                .unwrap();
            let mut fresh_scratch = EmScratch::new();
            let mut fresh = HaplotypeDist::empty();
            e.estimate_packed_into(&[&packed], &snps, &mut fresh_scratch, &mut fresh)
                .unwrap();
            assert_bit_identical(&out, &fresh, &format!("snps {snps:?}"));
            assert_bit_identical(&dirty, &fresh, &format!("paths at {snps:?}"));
        }
    }

    #[test]
    fn packed_fit_error_cases() {
        let e = est();
        let mut scratch = EmScratch::new();
        let mut out = HaplotypeDist::empty();
        let packed_of = |gs: &[Vec<G>]| ld_data::PackedColumns::from_columns(&columns(gs));
        // No individuals at all.
        let empty = packed_of(&[]);
        assert!(matches!(
            e.estimate_packed_into(&[&empty], &[0], &mut scratch, &mut out),
            Err(StatsError::NoObservations { .. })
        ));
        // All individuals incomplete.
        let missing = packed_of(&[vec![G::Missing], vec![G::Missing]]);
        assert!(matches!(
            e.estimate_packed_into(&[&missing], &[0], &mut scratch, &mut out),
            Err(StatsError::NoObservations { .. })
        ));
        // Zero-width haplotype.
        let one = packed_of(&[vec![G::Het]]);
        assert!(matches!(
            e.estimate_packed_into(&[&one], &[], &mut scratch, &mut out),
            Err(StatsError::InvalidParameter(_))
        ));
        // Out-of-range SNP.
        assert!(matches!(
            e.estimate_packed_into(&[&one], &[3], &mut scratch, &mut out),
            Err(StatsError::InvalidParameter(_))
        ));
        // Too wide.
        let wide = packed_of(&[vec![G::HomA1; MAX_HAPLOTYPE_SNPS + 1]]);
        let snps: Vec<usize> = (0..MAX_HAPLOTYPE_SNPS + 1).collect();
        assert!(matches!(
            e.estimate_packed_into(&[&wide], &snps, &mut scratch, &mut out),
            Err(StatsError::HaplotypeTooLarge { .. })
        ));
    }

    #[test]
    fn log_likelihood_increases_along_em() {
        // Run with a 1-iteration cap and a full run: full run LL >= capped.
        let gs = vec![
            vec![G::Het, G::Het],
            vec![G::HomA1, G::HomA2],
            vec![G::Het, G::HomA1],
            vec![G::HomA2, G::Het],
        ];
        let short = fit(
            &EmEstimator::new(EmConfig {
                max_iter: 1,
                tol: 0.0,
            }),
            &gs,
        )
        .unwrap();
        let long = fit(&est(), &gs).unwrap();
        assert!(long.log_likelihood >= short.log_likelihood - 1e-9);
        assert!(long.iterations >= 1);
    }

    #[test]
    fn repeated_estimates_are_bit_identical() {
        // Regression: pattern accumulation order must be deterministic, or
        // re-evaluating the same haplotype jitters in the last ulp and the
        // (otherwise seeded) GA trajectory diverges between identical runs.
        let gs = vec![
            vec![G::Het, G::Het, G::HomA1],
            vec![G::HomA2, G::Het, G::Het],
            vec![G::Het, G::HomA1, G::HomA2],
            vec![G::Het, G::Het, G::Het],
            vec![G::HomA1, G::HomA2, G::Het],
        ];
        let a = fit(&est(), &gs).unwrap();
        let b = fit(&est(), &gs).unwrap();
        assert_eq!(a.freqs, b.freqs);
        assert_eq!(a.log_likelihood.to_bits(), b.log_likelihood.to_bits());
    }

    #[test]
    fn lrt_detects_group_difference() {
        // Group A: all 22/22 homozygotes; group B: all 11/11.
        let a = vec![vec![G::HomA2, G::HomA2]; 30];
        let b = vec![vec![G::HomA1, G::HomA1]; 30];
        let r = em_lrt(&est(), &a, &b).unwrap();
        assert!(r.statistic > 20.0);
        assert!(r.p_value < 1e-4);
        assert_eq!(r.df, 3.0);
    }

    #[test]
    fn lrt_null_on_identical_groups() {
        let sample = vec![
            vec![G::Het, G::HomA1],
            vec![G::HomA2, G::Het],
            vec![G::HomA1, G::HomA1],
        ];
        let r = em_lrt(&est(), &sample, &sample).unwrap();
        assert!(r.statistic < 1e-6, "statistic = {}", r.statistic);
        assert!(r.p_value > 0.999);
    }
}
