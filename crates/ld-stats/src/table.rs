//! r×c contingency tables with fractional counts.
//!
//! CLUMP operates on a 2×m table of haplotype counts per status group. When
//! counts come from EH-DIALL they are *expected* counts (2N·p̂) and thus
//! fractional, so the cell type is `f64` throughout.

use crate::error::StatsError;

/// A dense r×c contingency table of non-negative counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ContingencyTable {
    n_rows: usize,
    n_cols: usize,
    /// Row-major cells.
    cells: Vec<f64>,
}

impl ContingencyTable {
    /// Build from row-major cells.
    pub fn from_rows(n_rows: usize, n_cols: usize, cells: Vec<f64>) -> Result<Self, StatsError> {
        if cells.len() != n_rows * n_cols {
            return Err(StatsError::BadTable(format!(
                "expected {} cells, got {}",
                n_rows * n_cols,
                cells.len()
            )));
        }
        if cells.iter().any(|&c| c < 0.0 || !c.is_finite()) {
            return Err(StatsError::BadTable(
                "cells must be finite and non-negative".into(),
            ));
        }
        Ok(ContingencyTable {
            n_rows,
            n_cols,
            cells,
        })
    }

    /// A 2×m table from two count vectors (the CLUMP shape).
    pub fn two_by_m(row_a: &[f64], row_b: &[f64]) -> Result<Self, StatsError> {
        if row_a.len() != row_b.len() {
            return Err(StatsError::BadTable(format!(
                "row lengths differ: {} vs {}",
                row_a.len(),
                row_b.len()
            )));
        }
        let mut cells = Vec::with_capacity(row_a.len() * 2);
        cells.extend_from_slice(row_a);
        cells.extend_from_slice(row_b);
        Self::from_rows(2, row_a.len(), cells)
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Cell value.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.n_rows && c < self.n_cols);
        self.cells[r * self.n_cols + c]
    }

    /// Mutable cell access (used by the Monte-Carlo sampler).
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        debug_assert!(r < self.n_rows && c < self.n_cols);
        &mut self.cells[r * self.n_cols + c]
    }

    /// Row sums.
    pub fn row_totals(&self) -> Vec<f64> {
        (0..self.n_rows)
            .map(|r| (0..self.n_cols).map(|c| self.get(r, c)).sum())
            .collect()
    }

    /// Column sums.
    pub fn col_totals(&self) -> Vec<f64> {
        (0..self.n_cols)
            .map(|c| (0..self.n_rows).map(|r| self.get(r, c)).sum())
            .collect()
    }

    /// Grand total.
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Expected count of a cell under independence, given the observed
    /// margins: `row_total · col_total / grand_total`.
    pub fn expected(&self, r: usize, c: usize) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        self.row_totals()[r] * self.col_totals()[c] / total
    }

    /// Drop columns whose total is zero (they carry no information and
    /// would inflate degrees of freedom). Returns the retained original
    /// column indices alongside the reduced table.
    pub fn drop_empty_cols(&self) -> (ContingencyTable, Vec<usize>) {
        let col_totals = self.col_totals();
        let keep: Vec<usize> = (0..self.n_cols).filter(|&c| col_totals[c] > 0.0).collect();
        let mut cells = Vec::with_capacity(self.n_rows * keep.len());
        for r in 0..self.n_rows {
            for &c in &keep {
                cells.push(self.get(r, c));
            }
        }
        (
            ContingencyTable {
                n_rows: self.n_rows,
                n_cols: keep.len(),
                cells,
            },
            keep,
        )
    }

    /// CLUMP T2 preprocessing: greedily merge the smallest-total columns
    /// until every cell's *expected* count is at least `min_expected`
    /// (or only two columns remain). Returns the collapsed table.
    pub fn collapse_rare_cols(&self, min_expected: f64) -> ContingencyTable {
        let (mut t, _) = self.drop_empty_cols();
        loop {
            if t.n_cols <= 2 {
                return t;
            }
            let min_cell_expected = (0..t.n_rows)
                .flat_map(|r| (0..t.n_cols).map(move |c| (r, c)))
                .map(|(r, c)| t.expected(r, c))
                .fold(f64::INFINITY, f64::min);
            if min_cell_expected >= min_expected {
                return t;
            }
            // Merge the two columns with the smallest totals.
            let totals = t.col_totals();
            let mut order: Vec<usize> = (0..t.n_cols).collect();
            order.sort_by(|&a, &b| totals[a].total_cmp(&totals[b]));
            let (c1, c2) = (order[0].min(order[1]), order[0].max(order[1]));
            let mut cells = Vec::with_capacity(t.n_rows * (t.n_cols - 1));
            for r in 0..t.n_rows {
                for c in 0..t.n_cols {
                    if c == c2 {
                        continue;
                    }
                    let v = if c == c1 {
                        t.get(r, c1) + t.get(r, c2)
                    } else {
                        t.get(r, c)
                    };
                    cells.push(v);
                }
            }
            t = ContingencyTable {
                n_rows: t.n_rows,
                n_cols: t.n_cols - 1,
                cells,
            };
        }
    }

    /// Extract the 2×2 table "column `c` vs all other columns" (requires a
    /// two-row table) — the building block of CLUMP's T3.
    pub fn col_vs_rest(&self, c: usize) -> Result<ContingencyTable, StatsError> {
        if self.n_rows != 2 {
            return Err(StatsError::BadTable(
                "col_vs_rest requires a two-row table".into(),
            ));
        }
        let row_totals = self.row_totals();
        let cells = vec![
            self.get(0, c),
            row_totals[0] - self.get(0, c),
            self.get(1, c),
            row_totals[1] - self.get(1, c),
        ];
        Self::from_rows(2, 2, cells)
    }

    /// Extract the 2×2 table "columns in `cols` (pooled) vs the rest".
    pub fn cols_vs_rest(&self, cols: &[usize]) -> Result<ContingencyTable, StatsError> {
        if self.n_rows != 2 {
            return Err(StatsError::BadTable(
                "cols_vs_rest requires a two-row table".into(),
            ));
        }
        let row_totals = self.row_totals();
        let in0: f64 = cols.iter().map(|&c| self.get(0, c)).sum();
        let in1: f64 = cols.iter().map(|&c| self.get(1, c)).sum();
        Self::from_rows(
            2,
            2,
            vec![in0, row_totals[0] - in0, in1, row_totals[1] - in1],
        )
    }

    /// Row-major cells.
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// An empty 0×0 placeholder for scratch workspaces.
    pub(crate) fn empty() -> Self {
        ContingencyTable {
            n_rows: 0,
            n_cols: 0,
            cells: Vec::new(),
        }
    }

    /// Rebuild `self` in place as a 2×m table — the scratch-path analogue
    /// of [`ContingencyTable::two_by_m`], with identical validation.
    pub(crate) fn refill_two_by_m(
        &mut self,
        row_a: &[f64],
        row_b: &[f64],
    ) -> Result<(), StatsError> {
        if row_a.len() != row_b.len() {
            return Err(StatsError::BadTable(format!(
                "row lengths differ: {} vs {}",
                row_a.len(),
                row_b.len()
            )));
        }
        if row_a
            .iter()
            .chain(row_b.iter())
            .any(|&c| c < 0.0 || !c.is_finite())
        {
            return Err(StatsError::BadTable(
                "cells must be finite and non-negative".into(),
            ));
        }
        self.n_rows = 2;
        self.n_cols = row_a.len();
        self.cells.clear();
        self.cells.extend_from_slice(row_a);
        self.cells.extend_from_slice(row_b);
        Ok(())
    }

    /// Rebuild `self` in place as a 2×2 table — the scratch-path analogue
    /// of `from_rows(2, 2, ...)`, with identical validation.
    pub(crate) fn refill_2x2(&mut self, cells: [f64; 4]) -> Result<(), StatsError> {
        if cells.iter().any(|&c| c < 0.0 || !c.is_finite()) {
            return Err(StatsError::BadTable(
                "cells must be finite and non-negative".into(),
            ));
        }
        self.n_rows = 2;
        self.n_cols = 2;
        self.cells.clear();
        self.cells.extend_from_slice(&cells);
        Ok(())
    }

    /// CLUMP T2 preprocessing without allocation: the same greedy collapse
    /// as [`ContingencyTable::collapse_rare_cols`], but every intermediate
    /// table lives in `work`. Returns the collapsed working table.
    ///
    /// Bit-identity with the legacy method is preserved by replicating its
    /// exact evaluation order: margins are summed in the same direction,
    /// the minimum expected count folds cells in the same `(r, c)` order
    /// with `f64::min`, and the two merge columns are chosen with the
    /// stable-sort tie-breaking of the original (earliest index wins among
    /// equal totals — see [`smallest_two`]).
    pub(crate) fn collapse_rare_cols_with<'a>(
        &self,
        min_expected: f64,
        work: &'a mut CollapseScratch,
    ) -> &'a ContingencyTable {
        // drop_empty_cols, into the working table.
        work.col_totals.clear();
        work.col_totals.extend(
            (0..self.n_cols).map(|c| (0..self.n_rows).map(|r| self.get(r, c)).sum::<f64>()),
        );
        let t = &mut work.table;
        t.n_rows = self.n_rows;
        t.n_cols = work.col_totals.iter().filter(|&&x| x > 0.0).count();
        t.cells.clear();
        for r in 0..self.n_rows {
            for c in 0..self.n_cols {
                if work.col_totals[c] > 0.0 {
                    t.cells.push(self.get(r, c));
                }
            }
        }
        loop {
            if t.n_cols <= 2 {
                return t;
            }
            work.row_totals.clear();
            work.row_totals
                .extend((0..t.n_rows).map(|r| (0..t.n_cols).map(|c| t.get(r, c)).sum::<f64>()));
            work.col_totals.clear();
            work.col_totals
                .extend((0..t.n_cols).map(|c| (0..t.n_rows).map(|r| t.get(r, c)).sum::<f64>()));
            let total: f64 = t.cells.iter().sum();
            let mut min_cell_expected = f64::INFINITY;
            for r in 0..t.n_rows {
                for c in 0..t.n_cols {
                    let e = if total <= 0.0 {
                        0.0
                    } else {
                        work.row_totals[r] * work.col_totals[c] / total
                    };
                    min_cell_expected = f64::min(min_cell_expected, e);
                }
            }
            if min_cell_expected >= min_expected {
                return t;
            }
            // Merge the two columns with the smallest totals.
            let (o0, o1) = smallest_two(&work.col_totals);
            let (c1, c2) = (o0.min(o1), o0.max(o1));
            work.alt.clear();
            for r in 0..t.n_rows {
                for c in 0..t.n_cols {
                    if c == c2 {
                        continue;
                    }
                    let v = if c == c1 {
                        t.get(r, c1) + t.get(r, c2)
                    } else {
                        t.get(r, c)
                    };
                    work.alt.push(v);
                }
            }
            std::mem::swap(&mut t.cells, &mut work.alt);
            t.n_cols -= 1;
        }
    }
}

/// Indices of the two smallest values in stable-sort order: the result
/// equals `(order[0], order[1])` after a *stable* ascending `total_cmp`
/// sort of the indices, without sorting (std's stable sort allocates).
/// Ties resolve to the earlier index, exactly like the stable sort.
fn smallest_two(totals: &[f64]) -> (usize, usize) {
    use std::cmp::Ordering;
    debug_assert!(totals.len() >= 2);
    let (mut i0, mut i1) = (0usize, 1usize);
    if totals[1].total_cmp(&totals[0]) == Ordering::Less {
        (i0, i1) = (1, 0);
    }
    for c in 2..totals.len() {
        if totals[c].total_cmp(&totals[i0]) == Ordering::Less {
            i1 = i0;
            i0 = c;
        } else if totals[c].total_cmp(&totals[i1]) == Ordering::Less {
            i1 = c;
        }
    }
    (i0, i1)
}

/// Working buffers for the in-place T2 collapse
/// ([`ContingencyTable::collapse_rare_cols_with`]).
#[derive(Debug)]
pub(crate) struct CollapseScratch {
    /// The working copy being collapsed (and the result).
    table: ContingencyTable,
    /// Ping-pong cell buffer for column merges.
    alt: Vec<f64>,
    row_totals: Vec<f64>,
    col_totals: Vec<f64>,
}

impl Default for CollapseScratch {
    fn default() -> Self {
        CollapseScratch {
            table: ContingencyTable::empty(),
            alt: Vec::new(),
            row_totals: Vec::new(),
            col_totals: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> ContingencyTable {
        ContingencyTable::from_rows(2, 3, vec![10.0, 20.0, 30.0, 15.0, 25.0, 5.0]).unwrap()
    }

    #[test]
    fn margins_and_total() {
        let t = t();
        assert_eq!(t.row_totals(), vec![60.0, 45.0]);
        assert_eq!(t.col_totals(), vec![25.0, 45.0, 35.0]);
        assert_eq!(t.total(), 105.0);
    }

    #[test]
    fn expected_under_independence() {
        let t = t();
        assert!((t.expected(0, 0) - 60.0 * 25.0 / 105.0).abs() < 1e-12);
        // Expected margins match observed margins.
        let exp_row0: f64 = (0..3).map(|c| t.expected(0, c)).sum();
        assert!((exp_row0 - 60.0).abs() < 1e-12);
    }

    #[test]
    fn construction_validation() {
        assert!(ContingencyTable::from_rows(2, 2, vec![1.0; 3]).is_err());
        assert!(ContingencyTable::from_rows(1, 2, vec![1.0, -1.0]).is_err());
        assert!(ContingencyTable::from_rows(1, 2, vec![1.0, f64::NAN]).is_err());
        assert!(ContingencyTable::two_by_m(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn two_by_m_layout() {
        let t = ContingencyTable::two_by_m(&[1.0, 2.0], &[3.0, 4.0]).unwrap();
        assert_eq!(t.get(0, 1), 2.0);
        assert_eq!(t.get(1, 0), 3.0);
    }

    #[test]
    fn drop_empty_cols_keeps_indices() {
        let t = ContingencyTable::from_rows(2, 3, vec![1.0, 0.0, 2.0, 3.0, 0.0, 4.0]).unwrap();
        let (r, keep) = t.drop_empty_cols();
        assert_eq!(keep, vec![0, 2]);
        assert_eq!(r.n_cols(), 2);
        assert_eq!(r.get(1, 1), 4.0);
    }

    #[test]
    fn collapse_merges_small_columns() {
        // Column 2 is tiny: must merge until min expected >= 5.
        let t = ContingencyTable::from_rows(2, 3, vec![20.0, 20.0, 1.0, 20.0, 20.0, 0.0]).unwrap();
        let c = t.collapse_rare_cols(5.0);
        assert!(c.n_cols() < 3);
        assert!((c.total() - t.total()).abs() < 1e-12);
        // Margins of rows preserved.
        assert_eq!(c.row_totals(), t.row_totals());
    }

    #[test]
    fn collapse_stops_at_two_columns() {
        let t = ContingencyTable::from_rows(2, 3, vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
        let c = t.collapse_rare_cols(100.0);
        assert_eq!(c.n_cols(), 2);
    }

    #[test]
    fn collapse_noop_when_all_expected_large() {
        let t = ContingencyTable::from_rows(2, 3, vec![50.0; 6]).unwrap();
        let c = t.collapse_rare_cols(5.0);
        assert_eq!(c.n_cols(), 3);
    }

    #[test]
    fn col_vs_rest_margins() {
        let t = t();
        let s = t.col_vs_rest(1).unwrap();
        assert_eq!(s.get(0, 0), 20.0);
        assert_eq!(s.get(0, 1), 40.0);
        assert_eq!(s.get(1, 0), 25.0);
        assert_eq!(s.get(1, 1), 20.0);
        assert_eq!(s.total(), t.total());
    }

    #[test]
    fn cols_vs_rest_pools() {
        let t = t();
        let s = t.cols_vs_rest(&[0, 2]).unwrap();
        assert_eq!(s.get(0, 0), 40.0);
        assert_eq!(s.get(1, 0), 20.0);
        assert_eq!(s.total(), t.total());
    }

    #[test]
    fn col_vs_rest_requires_two_rows() {
        let t = ContingencyTable::from_rows(3, 2, vec![1.0; 6]).unwrap();
        assert!(t.col_vs_rest(0).is_err());
        assert!(t.cols_vs_rest(&[0]).is_err());
    }
}
