//! Hardy–Weinberg equilibrium testing — the standard marker-QC step of any
//! association pipeline.
//!
//! Under random mating, genotype frequencies at a bi-allelic SNP follow
//! `(p², 2pq, q²)`. Strong departure in the *control* group usually flags a
//! genotyping artefact, and such SNPs are removed before analysis (a
//! companion filter to the §2.3 constraints). The test is a one-degree-of-
//! freedom χ² comparing observed genotype counts with their HWE
//! expectation.

use crate::chi2::Chi2Result;
use crate::special::chi2_sf;
use ld_data::{GenotypeMatrix, SnpId};

/// Observed genotype counts at one SNP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenotypeCounts {
    /// Homozygous wild type (`1/1`).
    pub hom1: usize,
    /// Heterozygous (`1/2`).
    pub het: usize,
    /// Homozygous mutant (`2/2`).
    pub hom2: usize,
}

impl GenotypeCounts {
    /// Count called genotypes of one SNP over a row subset.
    pub fn from_matrix(m: &GenotypeMatrix, rows: &[usize], snp: SnpId) -> Self {
        let mut c = GenotypeCounts {
            hom1: 0,
            het: 0,
            hom2: 0,
        };
        for &r in rows {
            match m.get(r, snp).a2_count() {
                Some(0) => c.hom1 += 1,
                Some(1) => c.het += 1,
                Some(2) => c.hom2 += 1,
                _ => {}
            }
        }
        c
    }

    /// Number of called individuals.
    pub fn total(&self) -> usize {
        self.hom1 + self.het + self.hom2
    }

    /// Mutant allele frequency.
    pub fn a2_freq(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        (self.het + 2 * self.hom2) as f64 / (2 * n) as f64
    }
}

/// χ² test of Hardy–Weinberg equilibrium (1 degree of freedom).
///
/// Returns [`Chi2Result::NULL`] for degenerate inputs (no individuals or a
/// monomorphic SNP, where HWE holds trivially).
pub fn hwe_chi2(counts: GenotypeCounts) -> Chi2Result {
    let n = counts.total() as f64;
    if n == 0.0 {
        return Chi2Result::NULL;
    }
    let q = counts.a2_freq();
    let p = 1.0 - q;
    if q <= 0.0 || q >= 1.0 {
        return Chi2Result::NULL;
    }
    let expected = [n * p * p, 2.0 * n * p * q, n * q * q];
    let observed = [counts.hom1 as f64, counts.het as f64, counts.hom2 as f64];
    let stat: f64 = observed
        .iter()
        .zip(&expected)
        .filter(|(_, &e)| e > 0.0)
        .map(|(&o, &e)| (o - e) * (o - e) / e)
        .sum();
    Chi2Result {
        statistic: stat,
        df: 1.0,
        p_value: chi2_sf(stat, 1.0),
    }
}

/// HWE scan over every SNP of a matrix (restricted to `rows`, typically the
/// control group). Returns one result per SNP.
pub fn hwe_scan(m: &GenotypeMatrix, rows: &[usize]) -> Vec<Chi2Result> {
    (0..m.n_snps())
        .map(|snp| hwe_chi2(GenotypeCounts::from_matrix(m, rows, snp)))
        .collect()
}

/// SNPs whose HWE p-value is below `alpha` — candidates for exclusion.
pub fn hwe_violations(m: &GenotypeMatrix, rows: &[usize], alpha: f64) -> Vec<SnpId> {
    hwe_scan(m, rows)
        .into_iter()
        .enumerate()
        .filter(|(_, r)| r.p_value < alpha)
        .map(|(snp, _)| snp)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_data::Genotype as G;

    #[test]
    fn perfect_hwe_population_passes() {
        // p = q = 0.5: expected 25/50/25 out of 100.
        let c = GenotypeCounts {
            hom1: 25,
            het: 50,
            hom2: 25,
        };
        let r = hwe_chi2(c);
        assert!(r.statistic < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert!((c.a2_freq() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn heterozygote_deficit_is_flagged() {
        // Same allele frequency, no heterozygotes at all (e.g. sample
        // duplication artefact): gross HWE violation.
        let c = GenotypeCounts {
            hom1: 50,
            het: 0,
            hom2: 50,
        };
        let r = hwe_chi2(c);
        assert!(r.statistic > 50.0);
        assert!(r.p_value < 1e-10);
    }

    #[test]
    fn degenerate_cases_are_null() {
        assert_eq!(
            hwe_chi2(GenotypeCounts {
                hom1: 0,
                het: 0,
                hom2: 0
            }),
            Chi2Result::NULL
        );
        // Monomorphic.
        assert_eq!(
            hwe_chi2(GenotypeCounts {
                hom1: 40,
                het: 0,
                hom2: 0
            }),
            Chi2Result::NULL
        );
    }

    #[test]
    fn scan_and_violation_filter() {
        // Column 0 in HWE (roughly), column 1 all-het (violation).
        let mut rows_data = Vec::new();
        for i in 0..40 {
            let g0 = match i % 4 {
                0 => G::HomA1,
                1 | 2 => G::Het,
                _ => G::HomA2,
            };
            rows_data.push(g0);
            rows_data.push(G::Het);
        }
        let m = GenotypeMatrix::from_rows(40, 2, rows_data).unwrap();
        let rows: Vec<usize> = (0..40).collect();
        let scan = hwe_scan(&m, &rows);
        assert_eq!(scan.len(), 2);
        assert!(scan[0].p_value > 0.05, "balanced column flagged");
        assert!(scan[1].p_value < 1e-6, "all-het column missed");
        assert_eq!(hwe_violations(&m, &rows, 0.001), vec![1]);
    }

    #[test]
    fn synthetic_population_is_mostly_in_hwe() {
        // The generator mates two independent chromosomes per individual,
        // so controls should largely satisfy HWE.
        let d = ld_data::synthetic::lille_51(42);
        let controls = d.rows_with_status(ld_data::Status::Unaffected);
        let violations = hwe_violations(&d.genotypes, &controls, 0.001);
        assert!(
            violations.len() <= 3,
            "too many HWE violations in controls: {violations:?}"
        );
    }
}
