//! Pearson's χ² test on contingency tables.

use crate::special::chi2_sf;
use crate::table::ContingencyTable;

/// Result of a χ² test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Result {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom `(r' − 1)(c' − 1)` counting only non-degenerate
    /// rows/columns.
    pub df: f64,
    /// Asymptotic p-value `Pr[χ²_df ≥ statistic]`.
    pub p_value: f64,
}

impl Chi2Result {
    /// A test that carries no information (degenerate table).
    pub const NULL: Chi2Result = Chi2Result {
        statistic: 0.0,
        df: 0.0,
        p_value: 1.0,
    };
}

/// Pearson's χ² statistic `Σ (O − E)² / E` over all cells with `E > 0`,
/// with degrees of freedom computed after dropping zero-margin rows and
/// columns.
///
/// Fractional counts are accepted (EM expected counts); the asymptotic
/// p-value is then approximate, which is why CLUMP backs the statistic
/// with a Monte-Carlo test (see [`crate::clump`]).
pub fn pearson_chi2(t: &ContingencyTable) -> Chi2Result {
    let row_totals = t.row_totals();
    let col_totals = t.col_totals();
    let total = t.total();
    if total <= 0.0 {
        return Chi2Result::NULL;
    }
    let live_rows: Vec<usize> = (0..t.n_rows()).filter(|&r| row_totals[r] > 0.0).collect();
    let live_cols: Vec<usize> = (0..t.n_cols()).filter(|&c| col_totals[c] > 0.0).collect();
    if live_rows.len() < 2 || live_cols.len() < 2 {
        return Chi2Result::NULL;
    }
    let mut stat = 0.0;
    for &r in &live_rows {
        for &c in &live_cols {
            let e = row_totals[r] * col_totals[c] / total;
            let o = t.get(r, c);
            stat += (o - e) * (o - e) / e;
        }
    }
    let df = ((live_rows.len() - 1) * (live_cols.len() - 1)) as f64;
    Chi2Result {
        statistic: stat,
        df,
        p_value: chi2_sf(stat, df),
    }
}

/// Margin and live-index buffers for the allocation-free χ² path.
#[derive(Debug, Default)]
pub(crate) struct Chi2Scratch {
    row_totals: Vec<f64>,
    col_totals: Vec<f64>,
    live_rows: Vec<usize>,
    live_cols: Vec<usize>,
}

/// [`pearson_chi2`] with caller-owned buffers: identical arithmetic in
/// identical order (margins, grand total, live-margin filtering, statistic
/// accumulation), so results are bit-for-bit equal to the allocating path.
pub(crate) fn pearson_chi2_with(t: &ContingencyTable, s: &mut Chi2Scratch) -> Chi2Result {
    s.row_totals.clear();
    s.row_totals
        .extend((0..t.n_rows()).map(|r| (0..t.n_cols()).map(|c| t.get(r, c)).sum::<f64>()));
    s.col_totals.clear();
    s.col_totals
        .extend((0..t.n_cols()).map(|c| (0..t.n_rows()).map(|r| t.get(r, c)).sum::<f64>()));
    let total = t.total();
    if total <= 0.0 {
        return Chi2Result::NULL;
    }
    s.live_rows.clear();
    s.live_rows
        .extend((0..t.n_rows()).filter(|&r| s.row_totals[r] > 0.0));
    s.live_cols.clear();
    s.live_cols
        .extend((0..t.n_cols()).filter(|&c| s.col_totals[c] > 0.0));
    if s.live_rows.len() < 2 || s.live_cols.len() < 2 {
        return Chi2Result::NULL;
    }
    let mut stat = 0.0;
    for &r in &s.live_rows {
        for &c in &s.live_cols {
            let e = s.row_totals[r] * s.col_totals[c] / total;
            let o = t.get(r, c);
            stat += (o - e) * (o - e) / e;
        }
    }
    let df = ((s.live_rows.len() - 1) * (s.live_cols.len() - 1)) as f64;
    Chi2Result {
        statistic: stat,
        df,
        p_value: chi2_sf(stat, df),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_path_matches_allocating_path() {
        let tables = [
            ContingencyTable::from_rows(2, 2, vec![10.0, 20.0, 15.0, 15.0]).unwrap(),
            ContingencyTable::from_rows(2, 3, vec![10.0, 0.0, 20.0, 20.0, 0.0, 10.0]).unwrap(),
            ContingencyTable::from_rows(2, 2, vec![0.0; 4]).unwrap(),
            ContingencyTable::from_rows(2, 2, vec![10.5, 19.5, 14.25, 15.75]).unwrap(),
        ];
        let mut s = Chi2Scratch::default();
        for t in &tables {
            let legacy = pearson_chi2(t);
            let fast = pearson_chi2_with(t, &mut s);
            assert_eq!(legacy.statistic.to_bits(), fast.statistic.to_bits());
            assert_eq!(legacy.df.to_bits(), fast.df.to_bits());
            assert_eq!(legacy.p_value.to_bits(), fast.p_value.to_bits());
        }
    }

    #[test]
    fn two_by_two_hand_computed() {
        // | 10 20 |   margins: 30, 30; cols 25, 35; total 60.
        // | 15 15 |
        let t = ContingencyTable::from_rows(2, 2, vec![10.0, 20.0, 15.0, 15.0]).unwrap();
        let r = pearson_chi2(&t);
        // E = [12.5, 17.5, 12.5, 17.5]; chi2 = 2*(2.5^2/12.5) + 2*(2.5^2/17.5)
        let expected = 2.0 * (6.25 / 12.5) + 2.0 * (6.25 / 17.5);
        assert!((r.statistic - expected).abs() < 1e-12);
        assert_eq!(r.df, 1.0);
        assert!(r.p_value > 0.15 && r.p_value < 0.25, "p = {}", r.p_value);
    }

    #[test]
    fn independent_table_gives_zero() {
        // Perfectly proportional rows.
        let t = ContingencyTable::from_rows(2, 3, vec![10.0, 20.0, 30.0, 5.0, 10.0, 15.0]).unwrap();
        let r = pearson_chi2(&t);
        assert!(r.statistic.abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-12);
        assert_eq!(r.df, 2.0);
    }

    #[test]
    fn zero_margins_reduce_df() {
        // Middle column empty: df should be (2-1)(2-1) = 1, not 2.
        let t = ContingencyTable::from_rows(2, 3, vec![10.0, 0.0, 20.0, 20.0, 0.0, 10.0]).unwrap();
        let r = pearson_chi2(&t);
        assert_eq!(r.df, 1.0);
        assert!(r.statistic > 0.0);
    }

    #[test]
    fn degenerate_tables_are_null() {
        let t = ContingencyTable::from_rows(2, 2, vec![0.0; 4]).unwrap();
        assert_eq!(pearson_chi2(&t), Chi2Result::NULL);
        // Single live row.
        let t = ContingencyTable::from_rows(2, 2, vec![5.0, 5.0, 0.0, 0.0]).unwrap();
        assert_eq!(pearson_chi2(&t), Chi2Result::NULL);
        // Single live column.
        let t = ContingencyTable::from_rows(2, 2, vec![5.0, 0.0, 7.0, 0.0]).unwrap();
        assert_eq!(pearson_chi2(&t), Chi2Result::NULL);
    }

    #[test]
    fn strong_association_small_p() {
        let t = ContingencyTable::from_rows(2, 2, vec![50.0, 5.0, 5.0, 50.0]).unwrap();
        let r = pearson_chi2(&t);
        assert!(r.statistic > 30.0);
        assert!(r.p_value < 1e-7);
    }

    #[test]
    fn fractional_counts_accepted() {
        let t = ContingencyTable::from_rows(2, 2, vec![10.5, 19.5, 14.25, 15.75]).unwrap();
        let r = pearson_chi2(&t);
        assert!(r.statistic.is_finite());
        assert!(r.p_value.is_finite());
    }

    #[test]
    fn statistic_grows_with_association_strength() {
        let mut prev = -1.0;
        for shift in [0.0, 5.0, 10.0, 15.0] {
            let t = ContingencyTable::from_rows(
                2,
                2,
                vec![20.0 + shift, 20.0 - shift, 20.0 - shift, 20.0 + shift],
            )
            .unwrap();
            let r = pearson_chi2(&t);
            assert!(r.statistic > prev);
            prev = r.statistic;
        }
    }
}
