//! Statistical power simulation: haplotype tests vs single-marker tests.
//!
//! The paper's motivation rests on Curtis et al. (cited as [3]):
//! "simultaneous use of several markers is more powerful for
//! identification of [the] chromosome that bears the mutation". This
//! module makes that claim reproducible: simulate case/control datasets
//! with one planted causal haplotype at a given effect size, then measure
//! how often (a) the multilocus EH→χ² test and (b) the best
//! Bonferroni-corrected single-marker test detect it at level α.

use crate::error::StatsError;
use crate::fitness::{EvalPipeline, FitnessKind};
use ld_data::synthetic::{PlantedSignal, SyntheticConfig};
use ld_data::SnpId;

/// Power-simulation configuration.
#[derive(Debug, Clone)]
pub struct PowerConfig {
    /// Base population model (its `signals` are replaced per grid point).
    pub base: SyntheticConfig,
    /// SNPs of the planted causal haplotype.
    pub signal_snps: Vec<SnpId>,
    /// Carrier frequency of the planted haplotype.
    pub carrier_freq: f64,
    /// Per-copy odds values to sweep (1.0 = null).
    pub odds_grid: Vec<f64>,
    /// Replicate datasets per grid point.
    pub n_replicates: usize,
    /// Significance level.
    pub alpha: f64,
}

/// Power at one effect size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerPoint {
    /// Per-copy odds of the planted haplotype.
    pub odds: f64,
    /// Detection rate of the multilocus haplotype test.
    pub haplotype_power: f64,
    /// Detection rate of the best single-marker test among the signal
    /// SNPs, Bonferroni-corrected for testing each of them.
    pub single_marker_power: f64,
}

/// Sweep the odds grid.
///
/// Deterministic: replicate `r` of grid point `g` uses seed
/// `seed0 + g * n_replicates + r`.
pub fn power_curve(cfg: &PowerConfig, seed0: u64) -> Result<Vec<PowerPoint>, StatsError> {
    if cfg.n_replicates == 0 {
        return Err(StatsError::InvalidParameter(
            "need at least one replicate".into(),
        ));
    }
    if !(0.0 < cfg.alpha && cfg.alpha < 1.0) {
        return Err(StatsError::InvalidParameter(format!(
            "alpha must be in (0, 1), got {}",
            cfg.alpha
        )));
    }
    if cfg.signal_snps.is_empty() {
        return Err(StatsError::InvalidParameter("empty signal".into()));
    }
    let mut out = Vec::with_capacity(cfg.odds_grid.len());
    for (g, &odds) in cfg.odds_grid.iter().enumerate() {
        let mut hap_hits = 0usize;
        let mut single_hits = 0usize;
        for r in 0..cfg.n_replicates {
            let seed = seed0 + (g * cfg.n_replicates + r) as u64;
            let mut model = cfg.base.clone();
            model.signals = vec![PlantedSignal::all_a2(
                cfg.signal_snps.clone(),
                odds,
                cfg.carrier_freq,
            )];
            let data = model
                .generate(seed)
                .map_err(|e| StatsError::InvalidParameter(e.to_string()))?;
            let pipeline = EvalPipeline::new(&data, FitnessKind::ClumpT1)?;

            // Multilocus test on the causal SNP set.
            let detail = pipeline.evaluate_detailed(&cfg.signal_snps)?;
            if detail.chi2.p_value < cfg.alpha {
                hap_hits += 1;
            }

            // Best single-marker test among the same SNPs, Bonferroni.
            let m = cfg.signal_snps.len() as f64;
            let best_single_p = cfg
                .signal_snps
                .iter()
                .map(|&s| {
                    pipeline
                        .evaluate_detailed(&[s])
                        .map(|d| d.chi2.p_value)
                        .unwrap_or(1.0)
                })
                .fold(1.0f64, f64::min);
            if best_single_p * m < cfg.alpha {
                single_hits += 1;
            }
        }
        out.push(PowerPoint {
            odds,
            haplotype_power: hap_hits as f64 / cfg.n_replicates as f64,
            single_marker_power: single_hits as f64 / cfg.n_replicates as f64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_data::synthetic::lille_51_config;

    fn base_config() -> PowerConfig {
        let mut base = lille_51_config();
        base.signals.clear();
        base.n_unknown = 0;
        PowerConfig {
            base,
            signal_snps: vec![8, 12, 15],
            carrier_freq: 0.3,
            odds_grid: vec![1.0, 4.0],
            n_replicates: 12,
            alpha: 0.05,
            // Keep the test cheap.
        }
    }

    #[test]
    fn null_effect_has_nominal_power() {
        let cfg = PowerConfig {
            odds_grid: vec![1.0],
            n_replicates: 20,
            ..base_config()
        };
        let curve = power_curve(&cfg, 100).unwrap();
        // At odds 1 the "power" is the type-I error: near alpha, certainly
        // far below 0.5.
        assert!(curve[0].haplotype_power <= 0.3, "null power {curve:?}");
    }

    #[test]
    fn power_increases_with_effect_size() {
        let curve = power_curve(&base_config(), 7).unwrap();
        assert_eq!(curve.len(), 2);
        assert!(
            curve[1].haplotype_power > curve[0].haplotype_power,
            "{curve:?}"
        );
        // A strong planted haplotype should be detected most of the time.
        assert!(curve[1].haplotype_power >= 0.7, "{curve:?}");
    }

    #[test]
    fn parameter_validation() {
        let mut cfg = base_config();
        cfg.n_replicates = 0;
        assert!(power_curve(&cfg, 0).is_err());
        let mut cfg = base_config();
        cfg.alpha = 0.0;
        assert!(power_curve(&cfg, 0).is_err());
        let mut cfg = base_config();
        cfg.signal_snps.clear();
        assert!(power_curve(&cfg, 0).is_err());
    }
}
