//! CLUMP: association statistics on 2×m contingency tables
//! (Sham & Curtis, *Ann. Hum. Genet.* 1995).
//!
//! CLUMP takes a table of category counts (here: haplotype counts) per
//! status group and produces four statistics:
//!
//! * **T1** — Pearson's χ² of the raw table. This is the statistic the
//!   paper uses as the GA's fitness ("a good haplotype … corresponds to a
//!   high value of T1", §2.4.2).
//! * **T2** — χ² after collapsing rare columns until every expected count
//!   is at least 5 (the classic validity rule).
//! * **T3** — the maximum 2×2 χ² over "one column vs the rest"
//!   comparisons.
//! * **T4** — the maximum 2×2 χ² over "a *clump* of columns vs the rest",
//!   with the clump grown greedily (the original program's heuristic;
//!   exhaustive subset search is exponential in m).
//!
//! Because T3/T4 maximize over comparisons their asymptotic null
//! distribution is unknown; CLUMP assesses significance by Monte-Carlo
//! simulation of tables with the same margins ([`crate::mc`]).

use crate::chi2::{pearson_chi2, pearson_chi2_with, Chi2Scratch};
use crate::error::StatsError;
use crate::mc::mc_pvalue;
use crate::table::{CollapseScratch, ContingencyTable};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which CLUMP statistic to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClumpStatistic {
    /// Raw-table χ².
    T1,
    /// Collapsed-table χ² (all expected ≥ 5).
    T2,
    /// Max single-column 2×2 χ².
    T3,
    /// Max greedy-clump 2×2 χ².
    T4,
}

impl ClumpStatistic {
    /// All four statistics in definition order.
    pub const ALL: [ClumpStatistic; 4] = [
        ClumpStatistic::T1,
        ClumpStatistic::T2,
        ClumpStatistic::T3,
        ClumpStatistic::T4,
    ];

    /// Evaluate this statistic on a 2×m table.
    pub fn evaluate(self, table: &ContingencyTable) -> Result<f64, StatsError> {
        if table.n_rows() != 2 {
            return Err(StatsError::BadTable(format!(
                "CLUMP requires a two-row table, got {} rows",
                table.n_rows()
            )));
        }
        Ok(match self {
            ClumpStatistic::T1 => pearson_chi2(table).statistic,
            ClumpStatistic::T2 => pearson_chi2(&table.collapse_rare_cols(5.0)).statistic,
            ClumpStatistic::T3 => t3(table)?,
            ClumpStatistic::T4 => t4(table)?,
        })
    }

    /// [`ClumpStatistic::evaluate`] with caller-owned buffers: the T2
    /// collapse and every T3/T4 column-vs-rest 2×2 sub-table are built in
    /// `scratch` instead of freshly allocated. Arithmetic order matches
    /// the allocating path exactly, so results are bit-for-bit identical.
    pub(crate) fn evaluate_with(
        self,
        table: &ContingencyTable,
        scratch: &mut ClumpScratch,
        chi2: &mut Chi2Scratch,
    ) -> Result<f64, StatsError> {
        if table.n_rows() != 2 {
            return Err(StatsError::BadTable(format!(
                "CLUMP requires a two-row table, got {} rows",
                table.n_rows()
            )));
        }
        Ok(match self {
            ClumpStatistic::T1 => pearson_chi2_with(table, chi2).statistic,
            ClumpStatistic::T2 => {
                pearson_chi2_with(
                    table.collapse_rare_cols_with(5.0, &mut scratch.collapse),
                    chi2,
                )
                .statistic
            }
            ClumpStatistic::T3 => t3_with(table, scratch, chi2)?,
            ClumpStatistic::T4 => t4_with(table, scratch, chi2)?,
        })
    }
}

/// Reusable sub-table and clump-search buffers for
/// [`ClumpStatistic::evaluate_with`].
#[derive(Debug)]
pub(crate) struct ClumpScratch {
    collapse: CollapseScratch,
    /// 2×2 working table for T3/T4 column-vs-rest comparisons.
    sub: ContingencyTable,
    in_clump: Vec<bool>,
    clump: Vec<usize>,
}

impl Default for ClumpScratch {
    fn default() -> Self {
        ClumpScratch {
            collapse: CollapseScratch::default(),
            sub: ContingencyTable::empty(),
            in_clump: Vec::new(),
            clump: Vec::new(),
        }
    }
}

/// In-place [`ContingencyTable::col_vs_rest`]: same margin sums, same cell
/// order, same validation.
fn refill_col_vs_rest(
    table: &ContingencyTable,
    c: usize,
    sub: &mut ContingencyTable,
) -> Result<(), StatsError> {
    let r0: f64 = (0..table.n_cols()).map(|cc| table.get(0, cc)).sum();
    let r1: f64 = (0..table.n_cols()).map(|cc| table.get(1, cc)).sum();
    sub.refill_2x2([
        table.get(0, c),
        r0 - table.get(0, c),
        table.get(1, c),
        r1 - table.get(1, c),
    ])
}

/// In-place [`ContingencyTable::cols_vs_rest`].
fn refill_cols_vs_rest(
    table: &ContingencyTable,
    cols: &[usize],
    sub: &mut ContingencyTable,
) -> Result<(), StatsError> {
    let r0: f64 = (0..table.n_cols()).map(|cc| table.get(0, cc)).sum();
    let r1: f64 = (0..table.n_cols()).map(|cc| table.get(1, cc)).sum();
    let in0: f64 = cols.iter().map(|&c| table.get(0, c)).sum();
    let in1: f64 = cols.iter().map(|&c| table.get(1, c)).sum();
    sub.refill_2x2([in0, r0 - in0, in1, r1 - in1])
}

/// Scratch-path [`t3`].
fn t3_with(
    table: &ContingencyTable,
    s: &mut ClumpScratch,
    chi2: &mut Chi2Scratch,
) -> Result<f64, StatsError> {
    let mut best = 0.0f64;
    for c in 0..table.n_cols() {
        refill_col_vs_rest(table, c, &mut s.sub)?;
        best = best.max(pearson_chi2_with(&s.sub, chi2).statistic);
    }
    Ok(best)
}

/// Scratch-path [`t4`]: identical greedy search (same seed choice, same
/// strict-improvement tie-breaking) over reused buffers.
fn t4_with(
    table: &ContingencyTable,
    s: &mut ClumpScratch,
    chi2: &mut Chi2Scratch,
) -> Result<f64, StatsError> {
    let m = table.n_cols();
    if m == 0 {
        return Ok(0.0);
    }
    s.in_clump.clear();
    s.in_clump.resize(m, false);
    s.clump.clear();
    let mut best = 0.0f64;
    let mut seed = 0usize;
    for c in 0..m {
        refill_col_vs_rest(table, c, &mut s.sub)?;
        let stat = pearson_chi2_with(&s.sub, chi2).statistic;
        if stat > best {
            best = stat;
            seed = c;
        }
    }
    s.clump.push(seed);
    s.in_clump[seed] = true;
    loop {
        let mut best_add: Option<(usize, f64)> = None;
        for c in 0..m {
            if s.in_clump[c] {
                continue;
            }
            s.clump.push(c);
            refill_cols_vs_rest(table, &s.clump, &mut s.sub)?;
            let stat = pearson_chi2_with(&s.sub, chi2).statistic;
            s.clump.pop();
            if stat > best && best_add.is_none_or(|(_, sb)| stat > sb) {
                best_add = Some((c, stat));
            }
        }
        match best_add {
            Some((c, stat)) => {
                s.clump.push(c);
                s.in_clump[c] = true;
                best = stat;
            }
            None => break,
        }
    }
    Ok(best)
}

/// Max over columns of the 2×2 (column vs rest) χ².
fn t3(table: &ContingencyTable) -> Result<f64, StatsError> {
    let mut best = 0.0f64;
    for c in 0..table.n_cols() {
        let sub = table.col_vs_rest(c)?;
        best = best.max(pearson_chi2(&sub).statistic);
    }
    Ok(best)
}

/// Greedy clump search: starting from the best single column, keep adding
/// the column that most improves the pooled 2×2 χ², stopping when no
/// addition improves it.
fn t4(table: &ContingencyTable) -> Result<f64, StatsError> {
    let m = table.n_cols();
    if m == 0 {
        return Ok(0.0);
    }
    // Seed: best single column.
    let mut in_clump = vec![false; m];
    let mut clump: Vec<usize> = Vec::new();
    let mut best = 0.0f64;
    let mut seed = 0usize;
    for c in 0..m {
        let stat = pearson_chi2(&table.col_vs_rest(c)?).statistic;
        if stat > best {
            best = stat;
            seed = c;
        }
    }
    clump.push(seed);
    in_clump[seed] = true;
    // Grow while improving.
    loop {
        let mut best_add: Option<(usize, f64)> = None;
        for (c, _) in in_clump.iter().enumerate().filter(|(_, used)| !**used) {
            clump.push(c);
            let stat = pearson_chi2(&table.cols_vs_rest(&clump)?).statistic;
            clump.pop();
            if stat > best && best_add.is_none_or(|(_, s)| stat > s) {
                best_add = Some((c, stat));
            }
        }
        match best_add {
            Some((c, stat)) => {
                clump.push(c);
                in_clump[c] = true;
                best = stat;
            }
            None => break,
        }
    }
    Ok(best)
}

/// Result of a full CLUMP analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ClumpResult {
    /// T1–T4 in order.
    pub statistics: [f64; 4],
    /// Monte-Carlo p-values for T1–T4 (present when simulations were run).
    pub mc_p_values: Option<[f64; 4]>,
    /// Asymptotic p-value of T1 (valid: its null is χ² with m−1 df).
    pub t1_asymptotic_p: f64,
}

impl ClumpResult {
    /// Fetch one statistic.
    pub fn statistic(&self, which: ClumpStatistic) -> f64 {
        self.statistics[index(which)]
    }

    /// Fetch one Monte-Carlo p-value, if simulations were run.
    pub fn mc_p_value(&self, which: ClumpStatistic) -> Option<f64> {
        self.mc_p_values.map(|p| p[index(which)])
    }
}

fn index(which: ClumpStatistic) -> usize {
    match which {
        ClumpStatistic::T1 => 0,
        ClumpStatistic::T2 => 1,
        ClumpStatistic::T3 => 2,
        ClumpStatistic::T4 => 3,
    }
}

/// Run CLUMP on a 2×m table: all four statistics, the asymptotic T1
/// p-value, and (when `n_sims > 0`) Monte-Carlo p-values for each.
pub fn clump<R: Rng + ?Sized>(
    table: &ContingencyTable,
    n_sims: usize,
    rng: &mut R,
) -> Result<ClumpResult, StatsError> {
    let mut statistics = [0.0f64; 4];
    for (i, stat) in ClumpStatistic::ALL.into_iter().enumerate() {
        statistics[i] = stat.evaluate(table)?;
    }
    let t1_asymptotic_p = pearson_chi2(table).p_value;
    let mc_p_values = if n_sims > 0 {
        let mut ps = [1.0f64; 4];
        for (i, stat) in ClumpStatistic::ALL.into_iter().enumerate() {
            ps[i] = mc_pvalue(table, n_sims, rng, |t| stat.evaluate(t).unwrap_or(0.0))?;
        }
        Some(ps)
    } else {
        None
    };
    Ok(ClumpResult {
        statistics,
        mc_p_values,
        t1_asymptotic_p,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    fn associated() -> ContingencyTable {
        // Column 0 enriched in row 0, column 3 enriched in row 1.
        ContingencyTable::two_by_m(&[40.0, 10.0, 10.0, 5.0], &[10.0, 10.0, 10.0, 35.0]).unwrap()
    }

    fn null_table() -> ContingencyTable {
        ContingencyTable::two_by_m(&[20.0, 20.0, 20.0], &[20.0, 20.0, 20.0]).unwrap()
    }

    #[test]
    fn t1_matches_pearson() {
        let t = associated();
        assert_eq!(
            ClumpStatistic::T1.evaluate(&t).unwrap(),
            pearson_chi2(&t).statistic
        );
    }

    #[test]
    fn all_statistics_zero_on_null_table() {
        let t = null_table();
        for s in ClumpStatistic::ALL {
            assert!(s.evaluate(&t).unwrap().abs() < 1e-9, "{s:?}");
        }
    }

    #[test]
    fn t3_at_most_t1_total_but_positive_under_association() {
        let t = associated();
        let t3 = ClumpStatistic::T3.evaluate(&t).unwrap();
        assert!(t3 > 10.0);
    }

    #[test]
    fn t4_at_least_t3() {
        // T4's search space includes single columns, so T4 >= T3.
        for table in [associated(), null_table()] {
            let t3 = ClumpStatistic::T3.evaluate(&table).unwrap();
            let t4 = ClumpStatistic::T4.evaluate(&table).unwrap();
            assert!(t4 >= t3 - 1e-12, "t3 {t3} t4 {t4}");
        }
    }

    #[test]
    fn t4_finds_composite_clump() {
        // Two columns each weakly enriched in row 0; pooling them beats any
        // single column.
        let t = ContingencyTable::two_by_m(&[18.0, 18.0, 14.0, 14.0], &[10.0, 10.0, 22.0, 22.0])
            .unwrap();
        let t3 = ClumpStatistic::T3.evaluate(&t).unwrap();
        let t4 = ClumpStatistic::T4.evaluate(&t).unwrap();
        assert!(t4 > t3 + 0.5, "t3 {t3} t4 {t4}");
    }

    #[test]
    fn t2_collapse_bounds_expected() {
        // A rare column would break the expected>=5 rule; T2 must collapse it.
        let t = ContingencyTable::two_by_m(&[30.0, 30.0, 1.0], &[30.0, 30.0, 0.0]).unwrap();
        let t2 = ClumpStatistic::T2.evaluate(&t).unwrap();
        assert!(t2.is_finite());
        // After collapse the tiny column is pooled, usually shrinking χ².
        let t1 = ClumpStatistic::T1.evaluate(&t).unwrap();
        assert!(t2 <= t1 + 1e-9);
    }

    #[test]
    fn rejects_non_two_row_tables() {
        let t = ContingencyTable::from_rows(3, 2, vec![1.0; 6]).unwrap();
        assert!(ClumpStatistic::T1.evaluate(&t).is_err());
        assert!(clump(&t, 0, &mut rng()).is_err());
    }

    #[test]
    fn full_clump_with_mc() {
        let t = associated();
        let r = clump(&t, 300, &mut rng()).unwrap();
        assert!(r.statistic(ClumpStatistic::T1) > 20.0);
        let ps = r.mc_p_values.unwrap();
        for p in ps {
            assert!((0.0..=1.0).contains(&p));
        }
        // Strong association: T1's MC p-value at the floor.
        assert!(r.mc_p_value(ClumpStatistic::T1).unwrap() <= 2.0 / 301.0);
        assert!(r.t1_asymptotic_p < 1e-6);
    }

    #[test]
    fn clump_without_mc_has_no_p_values() {
        let r = clump(&associated(), 0, &mut rng()).unwrap();
        assert!(r.mc_p_values.is_none());
        assert!(r.mc_p_value(ClumpStatistic::T1).is_none());
    }

    #[test]
    fn scratch_evaluate_matches_legacy_bitwise() {
        let tables = [
            associated(),
            null_table(),
            // Rare column forces a T2 collapse.
            ContingencyTable::two_by_m(&[30.0, 30.0, 1.0], &[30.0, 30.0, 0.0]).unwrap(),
            // Composite clump beats any single column (exercises T4 growth).
            ContingencyTable::two_by_m(&[18.0, 18.0, 14.0, 14.0], &[10.0, 10.0, 22.0, 22.0])
                .unwrap(),
        ];
        let mut scratch = ClumpScratch::default();
        let mut chi2 = Chi2Scratch::default();
        for t in &tables {
            for s in ClumpStatistic::ALL {
                let legacy = s.evaluate(t).unwrap();
                let fast = s.evaluate_with(t, &mut scratch, &mut chi2).unwrap();
                assert_eq!(legacy.to_bits(), fast.to_bits(), "{s:?}");
            }
        }
        // Same scratch on a non-two-row table errors like the legacy path.
        let bad = ContingencyTable::from_rows(3, 2, vec![1.0; 6]).unwrap();
        assert!(ClumpStatistic::T1
            .evaluate_with(&bad, &mut scratch, &mut chi2)
            .is_err());
    }

    #[test]
    fn mc_pvalues_calibrated_under_null() {
        // Under a null table the MC p-value should be large.
        let r = clump(&null_table(), 200, &mut rng()).unwrap();
        assert!(r.mc_p_value(ClumpStatistic::T1).unwrap() > 0.5);
    }
}
