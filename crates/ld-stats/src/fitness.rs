//! The paper's haplotype evaluation pipeline (Figure 3).
//!
//! ```text
//!   Selection of SNPs
//!        │                 │
//!   Affected people   Not affected people
//!   Enumeration       Enumeration
//!   EH-DIALL          EH-DIALL
//!        └──── Concatenation ────┘
//!              CLUMP
//! ```
//!
//! Starting from a candidate SNP set, the pipeline estimates the haplotype
//! distribution independently for affected and unaffected people (EH-DIALL,
//! [`crate::em`]), concatenates the two expected-count vectors into a 2×2^k
//! contingency table, and scores the association with a CLUMP statistic
//! ([`crate::clump`]). The GA maximizes that score.
//!
//! The evaluation cost grows exponentially with haplotype size `k` (phase
//! expansion in EM is `O(2^h)` per individual) — this is the paper's
//! Figure 4, and the reason evaluation is parallelized in `ld-parallel`.

use crate::chi2::{pearson_chi2, pearson_chi2_with, Chi2Result};
use crate::clump::{clump, ClumpResult, ClumpStatistic};
use crate::em::{em_lrt, EmEstimator, HaplotypeDist};
use crate::error::StatsError;
use crate::scratch::EvalScratch;
use crate::table::ContingencyTable;
use ld_data::{ColumnMatrix, Dataset, Genotype, GenotypeMatrix, PackedColumns, SnpId, Status};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which objective function scores a haplotype.
///
/// The paper's experiments use CLUMP's T1; its conclusion announces that
/// "different objective functions are going to be used in order to compare
/// them", which the other variants provide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FitnessKind {
    /// CLUMP T1 — χ² of the raw 2×2^k table (the paper's fitness).
    #[default]
    ClumpT1,
    /// CLUMP T2 — χ² after collapsing rare haplotype columns.
    ClumpT2,
    /// CLUMP T3 — best single-haplotype 2×2 χ².
    ClumpT3,
    /// CLUMP T4 — best greedy-clump 2×2 χ².
    ClumpT4,
    /// EH likelihood-ratio statistic (H1 per-group vs H0 pooled).
    EmLrt,
}

/// Which EM kernel backs [`EvalPipeline::evaluate_with`].
///
/// Both paths are bit-identical (the golden suites assert it); they differ
/// only in speed and data layout. The packed path is the default; the
/// scratch path remains selectable as the in-production oracle and as the
/// baseline side of the `eval_kernel` benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KernelPath {
    /// Bit-packed word-wide kernel: 2-bit genotype lanes, plane splits +
    /// popcounts, compacted CSR-gather EM loop
    /// ([`crate::em::EmEstimator::estimate_packed_into`]).
    #[default]
    Packed,
    /// Column-store scratch kernel: per-genotype mask pass, full-table EM
    /// loop ([`crate::em::EmEstimator::estimate_into`]).
    Scratch,
}

/// Detailed output of one evaluation.
#[derive(Debug, Clone)]
pub struct EvalDetail {
    /// The fitness value (the chosen statistic).
    pub fitness: f64,
    /// Pearson χ² summary of the concatenated table.
    pub chi2: Chi2Result,
    /// Haplotype distribution estimated on affected individuals.
    pub affected: HaplotypeDist,
    /// Haplotype distribution estimated on unaffected individuals.
    pub unaffected: HaplotypeDist,
    /// The concatenated CLUMP input table (affected row 0, unaffected row 1).
    pub table: ContingencyTable,
}

/// Reusable evaluation pipeline bound to one dataset.
///
/// Construction splits the dataset by status once; evaluation then only
/// gathers the selected SNP columns. The pipeline is `Send + Sync` and can
/// be shared across evaluation workers.
///
/// ```
/// use ld_stats::{EvalPipeline, FitnessKind};
///
/// let data = ld_data::synthetic::lille_51(42);
/// let pipeline = EvalPipeline::new(&data, FitnessKind::ClumpT1).unwrap();
/// // The planted causal haplotype scores well above an arbitrary triple.
/// let signal = pipeline.evaluate(&[8, 12, 15]).unwrap();
/// let noise = pipeline.evaluate(&[0, 24, 38]).unwrap();
/// assert!(signal > noise);
/// ```
#[derive(Debug, Clone)]
pub struct EvalPipeline {
    affected: GenotypeMatrix,
    unaffected: GenotypeMatrix,
    /// Column-major copies, built once: the evaluation kernel borrows
    /// contiguous per-SNP columns instead of gathering rows per call.
    affected_cols: ColumnMatrix,
    unaffected_cols: ColumnMatrix,
    /// Bit-packed lanes (2 bits per genotype, 32 individuals per word),
    /// built once per group for the word-wide packed kernel.
    affected_packed: PackedColumns,
    unaffected_packed: PackedColumns,
    kind: FitnessKind,
    path: KernelPath,
    estimator: EmEstimator,
}

impl EvalPipeline {
    /// Build a pipeline from a dataset, using the given objective.
    ///
    /// Unknown-status individuals are excluded (they carry no phenotype).
    pub fn new(dataset: &Dataset, kind: FitnessKind) -> Result<Self, StatsError> {
        let aff_rows = dataset.rows_with_status(Status::Affected);
        let una_rows = dataset.rows_with_status(Status::Unaffected);
        if aff_rows.is_empty() || una_rows.is_empty() {
            return Err(StatsError::NoObservations {
                context: "EvalPipeline (need both affected and unaffected individuals)",
            });
        }
        let affected = dataset
            .genotypes
            .select_rows(&aff_rows)
            .map_err(|e| StatsError::InvalidParameter(e.to_string()))?;
        let unaffected = dataset
            .genotypes
            .select_rows(&una_rows)
            .map_err(|e| StatsError::InvalidParameter(e.to_string()))?;
        let affected_cols = ColumnMatrix::from_matrix(&affected);
        let unaffected_cols = ColumnMatrix::from_matrix(&unaffected);
        let affected_packed = PackedColumns::from_columns(&affected_cols);
        let unaffected_packed = PackedColumns::from_columns(&unaffected_cols);
        Ok(EvalPipeline {
            affected,
            unaffected,
            affected_cols,
            unaffected_cols,
            affected_packed,
            unaffected_packed,
            kind,
            path: KernelPath::default(),
            estimator: EmEstimator::default(),
        })
    }

    /// The objective in use.
    pub fn kind(&self) -> FitnessKind {
        self.kind
    }

    /// The EM kernel currently backing [`EvalPipeline::evaluate_with`].
    pub fn kernel_path(&self) -> KernelPath {
        self.path
    }

    /// Builder-style kernel selection (see [`KernelPath`]).
    pub fn with_kernel_path(mut self, path: KernelPath) -> Self {
        self.path = path;
        self
    }

    /// Switch the EM kernel in place (see [`KernelPath`]).
    pub fn set_kernel_path(&mut self, path: KernelPath) {
        self.path = path;
    }

    /// Number of SNPs available.
    pub fn n_snps(&self) -> usize {
        self.affected.n_snps()
    }

    /// Group sizes `(affected, unaffected)`.
    pub fn group_sizes(&self) -> (usize, usize) {
        (
            self.affected.n_individuals(),
            self.unaffected.n_individuals(),
        )
    }

    /// Evaluate a haplotype: the fitness value only.
    ///
    /// Convenience wrapper over [`EvalPipeline::evaluate_with`] that
    /// creates a throwaway [`EvalScratch`]; hot loops should hold a
    /// per-worker scratch and call `evaluate_with` directly.
    pub fn evaluate(&self, snps: &[SnpId]) -> Result<f64, StatsError> {
        let mut scratch = EvalScratch::new();
        self.evaluate_with(&mut scratch, snps)
    }

    /// Evaluate a haplotype with full intermediate results.
    pub fn evaluate_detailed(&self, snps: &[SnpId]) -> Result<EvalDetail, StatsError> {
        let mut scratch = EvalScratch::new();
        self.evaluate_detailed_with(&mut scratch, snps)
    }

    /// The evaluation primitive: EH-DIALL → concatenation → CLUMP with
    /// every intermediate buffer borrowed from `scratch`.
    ///
    /// Zero heap allocations in steady state (buffers grow to the
    /// high-water mark of the largest haplotype, then are reused), and
    /// bit-identical results to the legacy allocating path
    /// ([`EvalPipeline::evaluate_legacy`]) — the EM, table, χ², and CLUMP
    /// arithmetic runs in exactly the same order over the same values.
    ///
    /// The EM fits run on the kernel selected by [`KernelPath`] (packed
    /// word-wide lanes by default); both kernels produce identical bits,
    /// so the choice is invisible to callers.
    pub fn evaluate_with(
        &self,
        scratch: &mut EvalScratch,
        snps: &[SnpId],
    ) -> Result<f64, StatsError> {
        validate_snps(snps, self.n_snps())?;
        let EvalScratch {
            em,
            dist_a,
            dist_b,
            pooled,
            table,
            chi2,
            clump,
        } = scratch;
        match self.path {
            KernelPath::Packed => {
                self.estimator
                    .estimate_packed_into(&[&self.affected_packed], snps, em, dist_a)?;
                self.estimator.estimate_packed_into(
                    &[&self.unaffected_packed],
                    snps,
                    em,
                    dist_b,
                )?;
            }
            KernelPath::Scratch => {
                self.estimator
                    .estimate_into(&[&self.affected_cols], snps, em, dist_a)?;
                self.estimator
                    .estimate_into(&[&self.unaffected_cols], snps, em, dist_b)?;
            }
        }
        table.refill_two_by_m(
            dist_a.expected_counts_slice(),
            dist_b.expected_counts_slice(),
        )?;
        match self.kind {
            FitnessKind::ClumpT1 => ClumpStatistic::T1.evaluate_with(table, clump, chi2),
            FitnessKind::ClumpT2 => ClumpStatistic::T2.evaluate_with(table, clump, chi2),
            FitnessKind::ClumpT3 => ClumpStatistic::T3.evaluate_with(table, clump, chi2),
            FitnessKind::ClumpT4 => ClumpStatistic::T4.evaluate_with(table, clump, chi2),
            FitnessKind::EmLrt => {
                // Pooled (H0) fit over affected-then-unaffected, the same
                // individual order as the legacy chained iterator.
                match self.path {
                    KernelPath::Packed => self.estimator.estimate_packed_into(
                        &[&self.affected_packed, &self.unaffected_packed],
                        snps,
                        em,
                        pooled,
                    )?,
                    KernelPath::Scratch => self.estimator.estimate_into(
                        &[&self.affected_cols, &self.unaffected_cols],
                        snps,
                        em,
                        pooled,
                    )?,
                }
                Ok(
                    (2.0 * (dist_a.log_likelihood + dist_b.log_likelihood - pooled.log_likelihood))
                        .max(0.0),
                )
            }
        }
    }

    /// [`EvalPipeline::evaluate_with`] plus the full intermediate results.
    ///
    /// The returned [`EvalDetail`] owns clones of the scratch state (it
    /// outlives the workspace), so this entry point allocates for its
    /// *output* — the evaluation itself still runs on scratch buffers.
    pub fn evaluate_detailed_with(
        &self,
        scratch: &mut EvalScratch,
        snps: &[SnpId],
    ) -> Result<EvalDetail, StatsError> {
        let fitness = self.evaluate_with(scratch, snps)?;
        let chi2 = pearson_chi2_with(&scratch.table, &mut scratch.chi2);
        Ok(EvalDetail {
            fitness,
            chi2,
            affected: scratch.dist_a.clone(),
            unaffected: scratch.dist_b.clone(),
            table: scratch.table.clone(),
        })
    }

    /// Reference implementation of the pre-scratch evaluation path.
    ///
    /// Kept verbatim (gathered rows, per-call `Vec`s, allocating EM) as
    /// the oracle for the golden equivalence tests and the baseline side
    /// of the `eval_kernel` benchmark. Not for production use.
    #[deprecated(
        since = "0.1.0",
        note = "allocating reference path; use `evaluate` or `evaluate_with`"
    )]
    pub fn evaluate_legacy(&self, snps: &[SnpId]) -> Result<f64, StatsError> {
        #[allow(deprecated)]
        Ok(self.evaluate_detailed_legacy(snps)?.fitness)
    }

    /// Reference implementation of the pre-scratch detailed evaluation.
    /// See [`EvalPipeline::evaluate_legacy`].
    #[deprecated(
        since = "0.1.0",
        note = "allocating reference path; use `evaluate_detailed` or `evaluate_detailed_with`"
    )]
    pub fn evaluate_detailed_legacy(&self, snps: &[SnpId]) -> Result<EvalDetail, StatsError> {
        validate_snps(snps, self.n_snps())?;
        let aff_flat = gather_group(&self.affected, snps);
        let una_flat = gather_group(&self.unaffected, snps);
        let k = snps.len();

        let affected = self.estimator.estimate_iter(aff_flat.chunks_exact(k))?;
        let unaffected = self.estimator.estimate_iter(una_flat.chunks_exact(k))?;
        #[allow(deprecated)]
        let table =
            ContingencyTable::two_by_m(&affected.expected_counts(), &unaffected.expected_counts())?;
        let chi2 = pearson_chi2(&table);
        let fitness = match self.kind {
            FitnessKind::ClumpT1 => ClumpStatistic::T1.evaluate(&table)?,
            FitnessKind::ClumpT2 => ClumpStatistic::T2.evaluate(&table)?,
            FitnessKind::ClumpT3 => ClumpStatistic::T3.evaluate(&table)?,
            FitnessKind::ClumpT4 => ClumpStatistic::T4.evaluate(&table)?,
            FitnessKind::EmLrt => {
                let a: Vec<Vec<Genotype>> = aff_flat.chunks_exact(k).map(|c| c.to_vec()).collect();
                let b: Vec<Vec<Genotype>> = una_flat.chunks_exact(k).map(|c| c.to_vec()).collect();
                em_lrt(&self.estimator, &a, &b)?.statistic
            }
        };
        Ok(EvalDetail {
            fitness,
            chi2,
            affected,
            unaffected,
            table,
        })
    }

    /// Full CLUMP analysis (all four statistics + Monte-Carlo p-values) of
    /// one haplotype — the significance report a biologist would read.
    pub fn clump_analysis<R: Rng + ?Sized>(
        &self,
        snps: &[SnpId],
        n_sims: usize,
        rng: &mut R,
    ) -> Result<ClumpResult, StatsError> {
        let detail = self.evaluate_detailed(snps)?;
        clump(&detail.table, n_sims, rng)
    }
}

fn validate_snps(snps: &[SnpId], n_snps: usize) -> Result<(), StatsError> {
    if snps.is_empty() {
        return Err(StatsError::InvalidParameter(
            "haplotype must contain at least one SNP".into(),
        ));
    }
    for w in snps.windows(2) {
        if w[0] >= w[1] {
            return Err(StatsError::InvalidParameter(format!(
                "haplotype SNPs must be strictly ascending: {snps:?}"
            )));
        }
    }
    if *snps.last().unwrap() >= n_snps {
        return Err(StatsError::InvalidParameter(format!(
            "SNP {} out of range (dataset has {n_snps})",
            snps.last().unwrap()
        )));
    }
    Ok(())
}

/// Flatten one group's genotypes at the selected SNPs into a single buffer
/// of `n_individuals × k` entries (row-major).
fn gather_group(m: &GenotypeMatrix, snps: &[SnpId]) -> Vec<Genotype> {
    let mut flat = Vec::with_capacity(m.n_individuals() * snps.len());
    for i in 0..m.n_individuals() {
        let row = m.row(i);
        flat.extend(snps.iter().map(|&s| row[s]));
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_data::synthetic::{lille_51, lille_51_config};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn pipeline() -> EvalPipeline {
        EvalPipeline::new(&lille_51(42), FitnessKind::ClumpT1).unwrap()
    }

    #[test]
    fn construction_splits_groups() {
        let p = pipeline();
        assert_eq!(p.group_sizes(), (53, 53));
        assert_eq!(p.n_snps(), 51);
        assert_eq!(p.kind(), FitnessKind::ClumpT1);
    }

    #[test]
    fn planted_signal_scores_higher_than_noise() {
        let p = pipeline();
        let signal = p.evaluate(&[8, 12, 15]).unwrap();
        // An arbitrary SNP triple away from every planted signal.
        let noise = p.evaluate(&[0, 24, 38]).unwrap();
        assert!(
            signal > noise,
            "signal {signal:.2} should beat noise {noise:.2}"
        );
        assert!(
            signal > 10.0,
            "planted signal should be strong: {signal:.2}"
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let p = pipeline();
        let a = p.evaluate(&[8, 12, 15]).unwrap();
        let b = p.evaluate(&[8, 12, 15]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn detailed_output_is_consistent() {
        let p = pipeline();
        let d = p.evaluate_detailed(&[8, 12]).unwrap();
        assert_eq!(d.affected.k, 2);
        assert_eq!(d.table.n_rows(), 2);
        assert_eq!(d.table.n_cols(), 4);
        // T1 fitness equals the table's Pearson statistic.
        assert!((d.fitness - d.chi2.statistic).abs() < 1e-12);
        // Table row totals are 2N per group.
        let rt = d.table.row_totals();
        assert!((rt[0] - 106.0).abs() < 1e-6);
        assert!((rt[1] - 106.0).abs() < 1e-6);
    }

    #[test]
    fn input_validation() {
        let p = pipeline();
        assert!(p.evaluate(&[]).is_err());
        assert!(p.evaluate(&[3, 2]).is_err());
        assert!(p.evaluate(&[3, 3]).is_err());
        assert!(p.evaluate(&[51]).is_err());
    }

    #[test]
    fn all_objectives_run_and_are_nonnegative() {
        let d = lille_51(42);
        for kind in [
            FitnessKind::ClumpT1,
            FitnessKind::ClumpT2,
            FitnessKind::ClumpT3,
            FitnessKind::ClumpT4,
            FitnessKind::EmLrt,
        ] {
            let p = EvalPipeline::new(&d, kind).unwrap();
            let f = p.evaluate(&[8, 12, 15]).unwrap();
            assert!(f.is_finite() && f >= 0.0, "{kind:?} gave {f}");
        }
    }

    #[test]
    fn objectives_agree_on_signal_ranking() {
        // Every objective should rank the planted signal above noise.
        let d = lille_51(42);
        for kind in [FitnessKind::ClumpT3, FitnessKind::EmLrt] {
            let p = EvalPipeline::new(&d, kind).unwrap();
            let signal = p.evaluate(&[8, 12, 15]).unwrap();
            let noise = p.evaluate(&[0, 24, 38]).unwrap();
            assert!(signal > noise, "{kind:?}: {signal} vs {noise}");
        }
    }

    #[test]
    fn fitness_grows_with_haplotype_size_on_nested_signal() {
        // The paper observes larger haplotypes get larger values; check the
        // trend along a chain extending the planted signal.
        let p = pipeline();
        let f3 = p.evaluate(&[8, 12, 15]).unwrap();
        let f5 = p.evaluate(&[8, 12, 15, 21, 32]).unwrap();
        assert!(f5 > f3, "size-5 {f5:.1} should exceed size-3 {f3:.1}");
    }

    #[test]
    fn clump_analysis_reports_significance() {
        let p = pipeline();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let r = p.clump_analysis(&[8, 12, 15], 200, &mut rng).unwrap();
        assert!(r.statistic(ClumpStatistic::T1) > 10.0);
        assert!(r.mc_p_value(ClumpStatistic::T1).unwrap() < 0.05);
    }

    #[test]
    fn kernel_paths_are_bit_identical_for_every_objective() {
        // The packed default and the scratch oracle must agree to the last
        // ulp for every objective, including the pooled EmLrt fit.
        let d = lille_51(42);
        for kind in [
            FitnessKind::ClumpT1,
            FitnessKind::ClumpT2,
            FitnessKind::ClumpT3,
            FitnessKind::ClumpT4,
            FitnessKind::EmLrt,
        ] {
            let p = EvalPipeline::new(&d, kind).unwrap();
            assert_eq!(p.kernel_path(), KernelPath::Packed);
            let q = p.clone().with_kernel_path(KernelPath::Scratch);
            for snps in [&[8usize, 12, 15][..], &[0, 24, 38], &[7], &[2, 3]] {
                let a = p.evaluate(snps).unwrap();
                let b = q.evaluate(snps).unwrap();
                assert_eq!(a.to_bits(), b.to_bits(), "{kind:?} {snps:?}");
            }
        }
    }

    #[test]
    fn kernel_path_switches_in_place() {
        let mut p = pipeline();
        let packed = p.evaluate(&[8, 12, 15]).unwrap();
        p.set_kernel_path(KernelPath::Scratch);
        assert_eq!(p.kernel_path(), KernelPath::Scratch);
        let scratch = p.evaluate(&[8, 12, 15]).unwrap();
        assert_eq!(packed.to_bits(), scratch.to_bits());
    }

    #[test]
    fn pipeline_requires_both_groups() {
        let mut cfg = lille_51_config();
        cfg.n_affected = 0;
        cfg.n_unaffected = 10;
        cfg.n_unknown = 0;
        let d = cfg.generate(1).unwrap();
        assert!(EvalPipeline::new(&d, FitnessKind::ClumpT1).is_err());
    }
}
