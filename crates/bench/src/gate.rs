//! Bench-regression gate over `eval_kernel` run reports.
//!
//! CI runs the `eval_kernel` bench fresh, then compares it against the
//! committed `BENCH_eval_kernel.json` baseline with `bench_gate`. Raw
//! nanoseconds don't transfer between hosts (the committed baseline may
//! come from a much slower or faster machine), so the gated quantity is
//! the **packed-vs-scratch speedup per k** — both sides of that ratio are
//! measured in the same process seconds apart, which cancels the host out.
//! A fresh speedup more than `tolerance` below the baseline's at any
//! `k ≥ min_k` fails the gate: the packed kernel got slower *relative to
//! the scratch kernel on the same box*, which is a code regression, not
//! hardware noise.

use serde_json::Value;

/// Section name of the per-k timing rows inside the run report, shared by
/// the bench writer (`benches/eval_kernel.rs`) and this parser.
pub const SECTION: &str = "rows_k_legacy_ns_scratch_ns_packed_ns_speedups";

/// One measured haplotype width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRow {
    /// Haplotype width.
    pub k: usize,
    /// Best per-call time of the legacy allocating path, nanoseconds.
    pub legacy_ns: f64,
    /// Best per-call time of the scratch-workspace path, nanoseconds.
    pub scratch_ns: f64,
    /// Best per-call time of the packed word-wide path, nanoseconds.
    pub packed_ns: f64,
}

impl KernelRow {
    /// Packed speedup over the scratch path — the gated ratio.
    pub fn packed_speedup(&self) -> f64 {
        self.scratch_ns / self.packed_ns
    }
}

/// Extract the per-k rows from a parsed `eval_kernel` run report.
///
/// Accepts rows with at least four leading numeric columns
/// `[k, legacy_ns, scratch_ns, packed_ns, ...]`; trailing speedup columns
/// are recomputed rather than trusted.
pub fn parse_rows(report: &Value) -> Result<Vec<KernelRow>, String> {
    let rows = report
        .get(SECTION)
        .ok_or_else(|| {
            format!(
                "report has no `{SECTION}` section — re-record the baseline \
                 with the current eval_kernel bench"
            )
        })?
        .as_array()
        .ok_or_else(|| format!("`{SECTION}` is not an array"))?;
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let cols = row
            .as_array()
            .ok_or_else(|| format!("row {i} of `{SECTION}` is not an array"))?;
        if cols.len() < 4 {
            return Err(format!(
                "row {i} of `{SECTION}` has {} columns, need ≥ 4",
                cols.len()
            ));
        }
        let num = |j: usize| -> Result<f64, String> {
            cols[j]
                .as_f64()
                .ok_or_else(|| format!("row {i} col {j} of `{SECTION}` is not a number"))
        };
        let parsed = KernelRow {
            k: num(0)? as usize,
            legacy_ns: num(1)?,
            scratch_ns: num(2)?,
            packed_ns: num(3)?,
        };
        if parsed.scratch_ns <= 0.0 || parsed.packed_ns <= 0.0 {
            return Err(format!("row {i} of `{SECTION}` has non-positive timings"));
        }
        out.push(parsed);
    }
    if out.is_empty() {
        return Err(format!("`{SECTION}` is empty"));
    }
    Ok(out)
}

/// Human-readable note when baseline and fresh reports come from visibly
/// different environments — regressions in *raw* nanoseconds are expected
/// then, which is exactly why the gate compares speedup ratios instead.
pub fn environment_note(baseline: &Value, fresh: &Value) -> Option<String> {
    let probe = |r: &Value, key: &str| r.get("environment")?.get(key).cloned();
    let mut diffs = Vec::new();
    for key in ["hostname", "cpus", "arch", "os"] {
        let (b, f) = (probe(baseline, key), probe(fresh, key));
        if b != f {
            let show = |v: Option<Value>| v.map_or("?".to_string(), |v| format!("{v:?}"));
            diffs.push(format!("{key} {} → {}", show(b), show(f)));
        }
    }
    if diffs.is_empty() {
        None
    } else {
        Some(format!(
            "baseline recorded on different environment ({}); raw ns are not \
             comparable, gating on packed-vs-scratch speedup ratios only",
            diffs.join(", ")
        ))
    }
}

/// Outcome of one gate evaluation.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// One human-readable line per compared width.
    pub lines: Vec<String>,
    /// Failure descriptions; empty means the gate passes.
    pub failures: Vec<String>,
}

impl GateOutcome {
    /// Did the gate pass?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compare fresh measurements against the committed baseline.
///
/// For every baseline width `k ≥ min_k` the fresh packed-vs-scratch
/// speedup must reach `baseline_speedup · (1 − tolerance)`; a missing
/// fresh row is a failure too (silent coverage loss). Widths below
/// `min_k` are reported but never gated: their per-call cost is dominated
/// by fixed setup, so their ratios are noise.
pub fn check(
    baseline: &[KernelRow],
    fresh: &[KernelRow],
    min_k: usize,
    tolerance: f64,
) -> GateOutcome {
    let mut out = GateOutcome::default();
    for b in baseline {
        let gated = b.k >= min_k;
        let Some(f) = fresh.iter().find(|f| f.k == b.k) else {
            if gated {
                out.failures
                    .push(format!("k={}: no fresh measurement", b.k));
            }
            out.lines
                .push(format!("k={}: missing from fresh report", b.k));
            continue;
        };
        let (bs, fs) = (b.packed_speedup(), f.packed_speedup());
        let floor = bs * (1.0 - tolerance);
        let status = if !gated {
            "info (below min_k)"
        } else if fs >= floor {
            "ok"
        } else {
            "REGRESSION"
        };
        out.lines.push(format!(
            "k={}: packed speedup {:.3} vs baseline {:.3} (floor {:.3}) — {}",
            b.k, fs, bs, floor, status
        ));
        if gated && fs < floor {
            out.failures.push(format!(
                "k={}: packed-vs-scratch speedup regressed {:.1}% ({:.3} < {:.3}, \
                 baseline {:.3})",
                b.k,
                (1.0 - fs / bs) * 100.0,
                fs,
                floor,
                bs
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(k: usize, scratch_ns: f64, packed_ns: f64) -> KernelRow {
        KernelRow {
            k,
            legacy_ns: scratch_ns * 1.4,
            scratch_ns,
            packed_ns,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let rows: Vec<KernelRow> = (2..=8).map(|k| row(k, 1000.0 * k as f64, 600.0)).collect();
        let out = check(&rows, &rows, 5, 0.10);
        assert!(out.passed(), "{:?}", out.failures);
        assert_eq!(out.lines.len(), 7);
    }

    #[test]
    fn regression_beyond_tolerance_fails_only_at_gated_widths() {
        let baseline: Vec<KernelRow> = (2..=8).map(|k| row(k, 2000.0, 1000.0)).collect();
        // Packed became 25% slower everywhere: speedup 2.0 → 1.6.
        let fresh: Vec<KernelRow> = (2..=8).map(|k| row(k, 2000.0, 1250.0)).collect();
        let out = check(&baseline, &fresh, 5, 0.10);
        assert!(!out.passed());
        // Only k = 5..=8 gate; k = 2..=4 are informational.
        assert_eq!(out.failures.len(), 4);
        assert!(out
            .failures
            .iter()
            .all(|f| { (5..=8).any(|k| f.starts_with(&format!("k={k}:"))) }));
    }

    #[test]
    fn regression_within_tolerance_passes() {
        let baseline = vec![row(5, 2000.0, 1000.0)]; // speedup 2.0
        let fresh = vec![row(5, 2000.0, 1080.0)]; // speedup ~1.85, −7.4%
        assert!(check(&baseline, &fresh, 5, 0.10).passed());
    }

    #[test]
    fn raw_slowdown_with_preserved_ratio_passes() {
        // A 10× slower host: both kernels slow down together, the ratio
        // holds, the gate must not fire.
        let baseline = vec![row(6, 2000.0, 900.0)];
        let fresh = vec![row(6, 20000.0, 9000.0)];
        assert!(check(&baseline, &fresh, 5, 0.10).passed());
    }

    #[test]
    fn missing_fresh_width_fails() {
        let baseline = vec![row(5, 2000.0, 1000.0), row(6, 2000.0, 1000.0)];
        let fresh = vec![row(5, 2000.0, 1000.0)];
        let out = check(&baseline, &fresh, 5, 0.10);
        assert_eq!(out.failures.len(), 1);
        assert!(out.failures[0].contains("k=6"));
    }

    #[test]
    fn parse_roundtrips_bench_report_shape() {
        let json: Value = serde_json::from_str(&format!(
            "{{\"run_id\":\"eval_kernel\",\"environment\":{{\"cpus\":1}},\
              \"{SECTION}\":[[2,4000.0,3000.0,1500.0,1.33,2.0],\
                             [5,9000.0,6000.0,2000.0,1.5,3.0]]}}"
        ))
        .unwrap();
        let rows = parse_rows(&json).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].k, 5);
        assert!((rows[1].packed_speedup() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn parse_rejects_missing_or_malformed_sections() {
        let missing: Value = serde_json::from_str("{\"run_id\":\"x\"}").unwrap();
        assert!(parse_rows(&missing).unwrap_err().contains(SECTION));
        let short: Value = serde_json::from_str(&format!("{{\"{SECTION}\":[[2,1.0]]}}")).unwrap();
        assert!(parse_rows(&short).is_err());
        let zero: Value =
            serde_json::from_str(&format!("{{\"{SECTION}\":[[2,1.0,0.0,1.0]]}}")).unwrap();
        assert!(parse_rows(&zero).is_err());
        let empty: Value = serde_json::from_str(&format!("{{\"{SECTION}\":[]}}")).unwrap();
        assert!(parse_rows(&empty).is_err());
    }

    #[test]
    fn environment_diff_is_annotated() {
        let a: Value =
            serde_json::from_str("{\"environment\":{\"cpus\":1,\"hostname\":\"slowbox\"}}")
                .unwrap();
        let b: Value =
            serde_json::from_str("{\"environment\":{\"cpus\":8,\"hostname\":\"ci\"}}").unwrap();
        let note = environment_note(&a, &b).unwrap();
        assert!(note.contains("cpus"));
        assert!(note.contains("hostname"));
        assert!(environment_note(&a, &a).is_none());
    }
}
