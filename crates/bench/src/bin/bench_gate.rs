//! CI bench-regression gate: compare a fresh `eval_kernel` run report
//! against the committed baseline and fail on packed-kernel regressions.
//!
//! ```text
//! bench_gate --baseline BENCH_eval_kernel.json --fresh fresh.json \
//!            [--min-k 5] [--tolerance-pct 10]
//! ```
//!
//! The gated quantity is the packed-vs-scratch speedup per haplotype
//! width (see `bench::gate`): raw nanoseconds differ wildly across hosts,
//! but both sides of that ratio come from the same process on the same
//! box, so a drop beyond the tolerance at any `k ≥ min_k` means the
//! packed kernel itself regressed. Exit code 1 on failure.

use serde_json::Value;

fn load(path: &str) -> Value {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read report {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse report {path}: {e}"))
}

fn main() {
    let baseline_path =
        bench::arg_str("baseline").unwrap_or_else(|| "BENCH_eval_kernel.json".to_string());
    let fresh_path = bench::arg_str("fresh").expect("--fresh <report.json> is required");
    let min_k = bench::arg_usize("min-k", 5);
    let tolerance = bench::arg_usize("tolerance-pct", 10) as f64 / 100.0;

    let baseline_report = load(&baseline_path);
    let fresh_report = load(&fresh_path);
    let baseline = bench::gate::parse_rows(&baseline_report)
        .unwrap_or_else(|e| panic!("baseline {baseline_path}: {e}"));
    let fresh = bench::gate::parse_rows(&fresh_report)
        .unwrap_or_else(|e| panic!("fresh {fresh_path}: {e}"));

    if let Some(note) = bench::gate::environment_note(&baseline_report, &fresh_report) {
        println!("note: {note}");
    }
    let outcome = bench::gate::check(&baseline, &fresh, min_k, tolerance);
    for line in &outcome.lines {
        println!("{line}");
    }
    if outcome.passed() {
        println!(
            "bench gate PASSED (min_k {min_k}, tolerance {:.0}%)",
            tolerance * 100.0
        );
    } else {
        eprintln!("bench gate FAILED:");
        for f in &outcome.failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
