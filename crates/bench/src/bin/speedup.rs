//! Regenerates the **§4.5 parallel-evaluation claim**: the synchronous
//! master/slaves model makes wall-clock time reasonable when evaluations
//! are expensive.
//!
//! Two workloads are swept over worker counts:
//!
//! * `cpu` — the real EH-DIALL + CLUMP objective. On a multi-core host the
//!   speedup approaches the worker count; on a single-core container it
//!   stays ≈ 1 (no parallel hardware to exploit).
//! * `latency` — the objective padded with a fixed sleep, emulating the
//!   paper's cluster setting where each evaluation runs on a remote node
//!   and the master mostly *waits*. Here the master/slaves overlap shows
//!   its real effect even on one core: speedup ≈ workers until the queue
//!   drains faster than the pad.
//!
//! ```text
//! cargo run --release -p bench --bin speedup [--batch 64] [--padms 5] [--report out.json]
//! ```

use bench::{arg_str, arg_usize, dataset, markdown_table, objective, write_report};
use ld_core::evaluator::FnEvaluator;
use ld_core::rng::random_haplotype;
use ld_core::{Evaluator, Haplotype, StatsEvaluator};
use ld_parallel::MasterSlaveEvaluator;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

fn batch(n: usize, k: usize, n_snps: usize) -> Vec<Haplotype> {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    (0..n)
        .map(|_| random_haplotype(&mut rng, n_snps, k))
        .collect()
}

fn time_batch<E: Evaluator>(eval: &E, proto: &[Haplotype]) -> Duration {
    let mut b = proto.to_vec();
    let t0 = Instant::now();
    eval.evaluate_batch(&mut b);
    t0.elapsed()
}

fn main() {
    let batch_size = arg_usize("batch", 64);
    let pad_ms = arg_usize("padms", 5);
    let workers = [1usize, 2, 4, 8];
    let data = dataset();

    println!("# §4.5 master/slaves evaluation speedup\n");
    println!(
        "(host reports {} available core(s))\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // ---- CPU-bound workload: the real objective ----
    println!("## cpu workload — real EH-DIALL+CLUMP, size-6 haplotypes, batch {batch_size}\n");
    let proto = batch(batch_size, 6, data.n_snps());
    let seq = objective(&data);
    let base = time_batch(&seq, &proto);
    let mut cpu_curve: Vec<(String, f64, f64)> =
        vec![("sequential".to_string(), base.as_secs_f64() * 1e3, 1.0)];
    let mut rows = vec![vec![
        "sequential".to_string(),
        format!("{base:.1?}"),
        "1.00".to_string(),
    ]];
    for &w in &workers {
        let par = MasterSlaveEvaluator::new(objective(&data), w);
        let t = time_batch(&par, &proto);
        let speedup = base.as_secs_f64() / t.as_secs_f64();
        cpu_curve.push((format!("{w}"), t.as_secs_f64() * 1e3, speedup));
        rows.push(vec![
            format!("{w} slave(s)"),
            format!("{t:.1?}"),
            format!("{speedup:.2}"),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["configuration", "batch time", "speedup"], &rows)
    );

    // ---- Latency-bound workload: remote-node emulation ----
    println!(
        "\n## latency workload — objective padded with a {pad_ms} ms sleep per\n\
         evaluation (emulates the paper's PVM cluster, where slaves are\n\
         remote nodes and the master waits on the network)\n"
    );
    let make_padded = || {
        let inner: StatsEvaluator = objective(&data);
        let pad = Duration::from_millis(pad_ms as u64);
        FnEvaluator::new(51, move |s: &[ld_data::SnpId]| {
            std::thread::sleep(pad);
            inner.evaluate_one(s)
        })
    };
    let proto = batch(batch_size, 4, data.n_snps());
    let base = time_batch(&make_padded(), &proto);
    let mut latency_curve: Vec<(String, f64, f64)> =
        vec![("sequential".to_string(), base.as_secs_f64() * 1e3, 1.0)];
    let mut rows = vec![vec![
        "sequential".to_string(),
        format!("{base:.1?}"),
        "1.00".to_string(),
    ]];
    for &w in &workers {
        let par = MasterSlaveEvaluator::new(make_padded(), w);
        let t = time_batch(&par, &proto);
        let speedup = base.as_secs_f64() / t.as_secs_f64();
        latency_curve.push((format!("{w}"), t.as_secs_f64() * 1e3, speedup));
        rows.push(vec![
            format!("{w} slave(s)"),
            format!("{t:.1?}"),
            format!("{speedup:.2}"),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["configuration", "batch time", "speedup"], &rows)
    );
    println!(
        "\nexpected shape: latency workload speedup ~ number of slaves (the\n\
         paper's regime); cpu workload speedup bounded by physical cores."
    );

    if let Some(path) = arg_str("report") {
        let report = ld_observe::RunReport::new("speedup")
            .section("params", &[("batch", batch_size), ("padms", pad_ms)])
            .section("cpu_workers_ms_speedup", &cpu_curve)
            .section("latency_workers_ms_speedup", &latency_curve);
        write_report(&report, &path);
    }
}
