//! Regenerates **Figure 4** — "Average time of an evaluation according to
//! the haplotype size": the EH-DIALL + CLUMP evaluation cost grows
//! exponentially with the number of SNPs in the haplotype.
//!
//! The paper reports ~6 ms at size 3 and ~201 ms at size 7 on a 2003-era
//! Pentium IV; absolute numbers differ here, but the exponential *shape*
//! (driven by the 2^(h−1) phase expansion inside EM) is the claim under
//! test.
//!
//! ```text
//! cargo run --release -p bench --bin figure4 [--samples 200] [--maxk 8] [--report out.json]
//! ```

use bench::{arg_str, arg_usize, dataset, markdown_table, objective, write_report};
use ld_core::rng::random_haplotype;
use ld_core::Evaluator;
use ld_parallel::TimingEvaluator;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let samples = arg_usize("samples", 200);
    let max_k = arg_usize("maxk", 8);
    let data = dataset();
    let timed = TimingEvaluator::new(objective(&data));
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    println!("# Figure 4 — mean evaluation time vs haplotype size\n");
    println!(
        "({} random haplotypes per size on the 51-SNP dataset)\n",
        samples
    );
    let mut rows = Vec::new();
    let mut curve: Vec<(usize, usize, f64)> = Vec::new();
    let mut prev_ms: Option<f64> = None;
    for k in 2..=max_k {
        // Fewer samples at the expensive large sizes keeps the run short
        // without hurting the mean estimate.
        let n = if k >= 7 { samples / 4 } else { samples }.max(10);
        for _ in 0..n {
            let h = random_haplotype(&mut rng, data.n_snps(), k);
            let _ = timed.evaluate_one(h.snps());
        }
        let mean_ms = timed.mean_ns_for_size(k).expect("samples were evaluated") / 1e6;
        let growth = prev_ms.map_or("-".to_string(), |p| format!("x{:.2}", mean_ms / p));
        prev_ms = Some(mean_ms);
        curve.push((k, n, mean_ms));
        rows.push(vec![
            k.to_string(),
            n.to_string(),
            format!("{mean_ms:.3}"),
            growth,
        ]);
    }
    println!(
        "{}",
        markdown_table(&["size", "samples", "mean eval (ms)", "growth"], &rows)
    );
    println!(
        "\nexpected shape: convex growth with size (the paper's curve is\n\
         exponential; EM phase expansion is O(2^h) per individual and the\n\
         haplotype table is O(2^k))."
    );

    if let Some(path) = arg_str("report") {
        let registry = ld_observe::Registry::new();
        timed.publish(&registry);
        let report = ld_observe::RunReport::new("figure4")
            .section("params", &[("samples", samples), ("maxk", max_k)])
            .section("curve_size_samples_mean_ms", &curve)
            .section("metrics", &registry.snapshot());
        write_report(&report, &path);
    }
}
