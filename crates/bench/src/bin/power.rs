//! Power study — haplotype vs single-marker tests, the Curtis et al.
//! claim the paper's motivation cites ("simultaneous use of several
//! markers is more powerful").
//!
//! ```text
//! cargo run --release -p bench --bin power [--reps 60]
//! ```

use bench::{arg_usize, markdown_table};
use ld_data::synthetic::lille_51_config;
use ld_stats::power::{power_curve, PowerConfig};

fn print_curve(cfg: &PowerConfig, seed: u64) {
    let t0 = std::time::Instant::now();
    let curve = power_curve(cfg, seed).expect("valid power config");
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.odds),
                format!("{:.2}", p.haplotype_power),
                format!("{:.2}", p.single_marker_power),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["odds per copy", "haplotype power", "single-marker power"],
            &rows
        )
    );
    println!("(computed in {:.1?})", t0.elapsed());
}

fn main() {
    let reps = arg_usize("reps", 60);
    println!("# Power: 3-SNP haplotype test vs best single marker (Bonferroni)\n");
    println!(
        "(53 cases / 53 controls per replicate, {} replicates per point, alpha 0.05)\n",
        reps
    );

    // ---- Scenario A: planted haplotype (overwrite) ----
    // The risk haplotype is written onto carrier chromosomes, so each
    // component SNP also gains a *marginal* association.
    println!("## scenario A — planted risk haplotype (marginal signal at each SNP)\n");
    let mut base = lille_51_config();
    base.signals.clear();
    base.n_unknown = 0;
    let cfg = PowerConfig {
        base: base.clone(),
        signal_snps: vec![8, 12, 15],
        carrier_freq: 0.3,
        odds_grid: vec![1.0, 1.5, 2.0, 2.5, 3.0, 4.0],
        n_replicates: reps,
        alpha: 0.05,
    };
    print_curve(&cfg, 2024);

    // ---- Scenario B: phase-only signal ----
    // carrier_freq = 0: nothing is overwritten; the disease depends on a
    // *naturally occurring* allele combination. Marginal frequencies barely
    // move, so single-marker tests lose their edge — the regime where
    // haplotype analysis earns its keep (Curtis et al.).
    println!("\n## scenario B — phase-only signal (no marginal enrichment injected)\n");
    let mut phased_base = base;
    phased_base.allele2_freq_range = (0.4, 0.6);
    let cfg = PowerConfig {
        base: phased_base,
        signal_snps: vec![8, 12, 15],
        carrier_freq: 0.0,
        odds_grid: vec![1.0, 2.0, 3.0, 4.0, 6.0],
        n_replicates: reps,
        alpha: 0.05,
    };
    print_curve(&cfg, 4048);

    println!(
        "\nexpected shape: in scenario A the Bonferroni single-marker test is\n\
         competitive (each SNP carries marginal signal; the haplotype test\n\
         pays a degrees-of-freedom penalty). In scenario B — the situation\n\
         that motivates the whole approach — marginal signals are weak and\n\
         the multilocus haplotype test clearly dominates."
    );
}
