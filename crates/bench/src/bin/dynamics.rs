//! Run-dynamics report: adaptive-rate trajectories (§4.3), convergence
//! curves, random-immigrant episodes and population diversity (§4.4) —
//! the mechanisms the paper describes qualitatively, measured.
//!
//! ```text
//! cargo run --release -p bench --bin dynamics [--seed 0] [--report out.json]
//! ```

use bench::{arg_str, arg_usize, dataset, markdown_table, objective, write_report};
use ld_core::diversity;
use ld_core::telemetry::analyze;
use ld_core::{GaConfig, GaRun, StepOutcome};
use ld_observe::{Observer, Registry, RingSink, RunReport};
use std::sync::Arc;

fn main() {
    let seed = arg_usize("seed", 0) as u64;
    let report_path = arg_str("report");
    let data = dataset();
    let eval = objective(&data);
    let cfg = GaConfig::default();

    println!("# Run dynamics — 51 SNPs, full scheme, seed {seed}\n");

    // With --report, observe the run so the report carries a live metrics
    // snapshot next to the telemetry fold; without it, stay zero-cost.
    let registry = Registry::new();
    let observer = if report_path.is_some() {
        Observer::new(
            format!("dynamics-{seed}"),
            Arc::new(RingSink::new(1 << 12)),
            registry.clone(),
        )
    } else {
        Observer::disabled()
    };

    // Step the run manually so we can sample diversity along the way.
    let mut run =
        GaRun::new_observed(&eval, cfg.clone(), seed, None, None, observer).expect("valid config");
    let mut diversity_samples: Vec<(usize, f64, f64)> = Vec::new();
    loop {
        let outcome = run.step();
        if run.generation() % 25 == 0 || matches!(outcome, StepOutcome::StagnationLimitReached) {
            // Diversity of the largest subpopulation (the roomiest one).
            let sub = run.population().get(cfg.max_size).expect("managed size");
            let d = diversity::measure(sub);
            diversity_samples.push((run.generation(), d.mean_jaccard_distance, d.snp_entropy));
        }
        match outcome {
            StepOutcome::StagnationLimitReached | StepOutcome::GenerationCapReached => break,
            _ => {}
        }
    }
    let result = run.finish();
    let report = analyze(&result);

    println!(
        "run: {} generations, {} evaluations, last improvement at generation {}\n",
        result.generations, result.total_evaluations, report.last_improvement
    );

    println!("## adaptive operator rates (mean over run quarters)\n");
    let mut rows = Vec::new();
    for r in report.mutation_rates.iter().chain(&report.crossover_rates) {
        rows.push(vec![
            r.operator.to_string(),
            format!("{:.3}", r.early),
            format!("{:.3}", r.late),
            format!("{:.3}", r.overall),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["operator", "early", "late", "overall"], &rows)
    );
    println!(
        "dominant mutation operator: {}\n",
        report.dominant_mutation()
    );

    println!("## convergence (generation of each improvement, per size)\n");
    for curve in &report.convergence {
        let pts: Vec<String> = curve
            .points
            .iter()
            .map(|(g, f)| format!("g{g}:{f:.1}"))
            .collect();
        println!("size {}: {}", curve.size, pts.join(" → "));
    }

    println!("\n## random-immigrant episodes\n");
    if report.immigrant_episodes.is_empty() {
        println!("none (no stagnation window reached before termination)");
    } else {
        for e in &report.immigrant_episodes {
            println!(
                "generation {:>4}: {} individuals replaced",
                e.generation, e.replaced
            );
        }
        println!("total immigrants: {}", report.total_immigrants());
    }

    println!(
        "\n## diversity of the size-{} subpopulation over time\n",
        cfg.max_size
    );
    let mut rows = Vec::new();
    for (g, jaccard, entropy) in &diversity_samples {
        rows.push(vec![
            g.to_string(),
            format!("{jaccard:.3}"),
            format!("{entropy:.3}"),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["generation", "mean Jaccard dist", "SNP entropy"], &rows)
    );
    println!(
        "\nexpected shape: the SNP-mutation operator dominates the mutation\n\
         rates (it is the productive local search); diversity decays as the\n\
         population converges and jumps back after immigrant episodes."
    );

    if let Some(path) = report_path {
        let full = RunReport::new(&format!("dynamics-{seed}"))
            .section("config", &cfg)
            .section("seed", &seed)
            .section("telemetry", &report)
            .section("metrics", &registry.snapshot())
            .section("diversity_gen_jaccard_entropy", &diversity_samples);
        write_report(&full, &path);
    }
}
