//! Warm-start ablation — tests the paper's §3 claim empirically.
//!
//! §3 argues constructive approaches fail because "some very good
//! haplotypes of size k are not always composed of haplotypes of smaller
//! size with a good score". If that holds, seeding the initial population
//! from the individually best SNPs should buy little (and can hurt by
//! concentrating diversity on deceptive markers).
//!
//! ```text
//! cargo run --release -p bench --bin warmstart [--runs 5]
//! ```

use bench::{arg_usize, dataset, fit, markdown_table, objective};
use ld_core::experiment::run_experiment;
use ld_core::{GaConfig, InitStrategy};

fn main() {
    let n_runs = arg_usize("runs", 5);
    let data = dataset();
    let eval = objective(&data);

    let strategies = [
        InitStrategy::Random,
        InitStrategy::SingleMarkerSeeded {
            seeded_fraction: 0.5,
            pool_size: 12,
        },
        InitStrategy::SingleMarkerSeeded {
            seeded_fraction: 1.0,
            pool_size: 12,
        },
    ];

    println!("# Warm-start ablation ({n_runs} runs each) — §3 non-constructiveness\n");
    let mut fit_rows = Vec::new();
    let mut eval_rows = Vec::new();
    for init in strategies {
        let cfg = GaConfig {
            init,
            ..GaConfig::default()
        };
        let summary = run_experiment(&eval, &cfg, n_runs, 0, None, |_| None);
        let mut frow = vec![init.label()];
        frow.extend(summary.sizes.iter().map(|s| fit(s.mean_fitness)));
        fit_rows.push(frow);
        let mut erow = vec![init.label()];
        erow.extend(summary.sizes.iter().map(|s| format!("{:.0}", s.mean_evals)));
        eval_rows.push(erow);
    }
    println!("## mean best fitness per size\n");
    println!(
        "{}",
        markdown_table(&["init", "k=2", "k=3", "k=4", "k=5", "k=6"], &fit_rows)
    );
    println!("\n## mean evaluations to reach each size's best\n");
    println!(
        "{}",
        markdown_table(&["init", "k=2", "k=3", "k=4", "k=5", "k=6"], &eval_rows)
    );
    println!(
        "\nexpected shape (paper §3): seeding from individually strong SNPs\n\
         yields little or no final-quality gain — the per-size optima are\n\
         not unions of the best single markers. Any speedup should appear\n\
         only at small sizes, where single-marker signal is most aligned."
    );
}
