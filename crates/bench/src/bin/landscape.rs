//! Regenerates the **§3 landscape study**: exhaustive enumeration of all
//! haplotypes of sizes 2–4 on the 51-SNP problem, establishing
//!
//! 1. the exact per-size optima (the reference for Table 2's Dev. column),
//! 2. that good size-k haplotypes are not always extensions of good
//!    size-(k−1) haplotypes (non-constructiveness), and
//! 3. that fitness ranges grow with haplotype size (cross-size
//!    incomparability).
//!
//! ```text
//! cargo run --release -p bench --bin landscape [--maxk 4] [--top 10]
//! ```

use bench::{arg_usize, dataset, fit, markdown_table, objective};
use ld_enum::landscape_report;

fn main() {
    let max_k = arg_usize("maxk", 4);
    let top = arg_usize("top", 10);
    let data = dataset();
    let eval = objective(&data);

    println!("# §3 landscape study — exhaustive enumeration, 51 SNPs\n");
    let t0 = std::time::Instant::now();
    let report = landscape_report(&eval, 2, max_k, top);
    println!("(enumerated in {:.1?})\n", t0.elapsed());

    let mut rows = Vec::new();
    for s in &report.sizes {
        rows.push(vec![
            s.size.to_string(),
            s.n_enumerated.to_string(),
            fit(s.max_fitness),
            fit(s.mean_fitness),
            fit(s.min_fitness),
            format!(
                "{:?}",
                s.top.first().map(|h| h.snps.clone()).unwrap_or_default()
            ),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["size", "enumerated", "max", "mean", "min", "best haplotype"],
            &rows
        )
    );

    println!("\n## Non-constructiveness\n");
    for (i, frac) in report.best_nested_fraction.iter().enumerate() {
        let k = report.sizes[i + 1].size;
        println!(
            "fraction of top-{top} size-{k} haplotypes containing the best size-{} haplotype: {:.2}",
            k - 1,
            frac
        );
    }

    println!(
        "\n## Top-5 per size (paper: good large haplotypes need not extend good small ones)\n"
    );
    for s in &report.sizes {
        println!("size {}:", s.size);
        for h in s.top.iter().take(5) {
            println!("  {:?} = {:.3}", h.snps, h.fitness);
        }
    }

    println!(
        "\nexpected shape: max/mean grow with size (cross-size incomparability)\n\
         and the nested fractions are well below 1 (constructive methods fail)."
    );
}
