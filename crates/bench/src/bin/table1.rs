//! Regenerates **Table 1** — "Size of the search space": the number of
//! possible haplotypes of sizes 2–6 for panels of 51, 150 and 249 SNPs.
//!
//! ```text
//! cargo run --release -p bench --bin table1
//! ```

use bench::markdown_table;
use ld_enum::count::{choose_exact, choose_f64, total_space_f64};

fn main() {
    println!("# Table 1 — size of the search space C(n, k)\n");
    let panels = [51u64, 150, 249];
    let mut rows = Vec::new();
    for k in 2..=6u64 {
        let mut row = vec![k.to_string()];
        for &n in &panels {
            let cell = match choose_exact(n, k) {
                Some(c) if c < 1_000_000_000 => format!("{c}"),
                _ => format!("{:.3e}", choose_f64(n, k)),
            };
            row.push(cell);
        }
        rows.push(row);
    }
    println!(
        "{}",
        markdown_table(
            &["haplotype size", "51 SNPs", "150 SNPs", "249 SNPs"],
            &rows
        )
    );
    println!(
        "total space (sizes 2-6): 51 SNPs = {:.3e}, 150 SNPs = {:.3e}, 249 SNPs = {:.3e}",
        total_space_f64(51, 2, 6),
        total_space_f64(150, 2, 6),
        total_space_f64(249, 2, 6),
    );
    println!(
        "\npaper values: C(51,k) = 1275 / 20825 / 249900 / 2349060 / 18009460;\n\
         C(150,6) ~ 14.3e9; C(249,5) ~ 7.6e9; C(249,6) ~ 3.11e11 — all match exactly\n\
         (pinned by unit tests in ld-enum::count)."
    );
}
