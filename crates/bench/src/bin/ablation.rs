//! Regenerates the **§5.2 ablation study**: the paper "tested the GA in
//! different manners in order to find the best configuration — without and
//! with the random immigrant; without and with the reduction and the
//! augmentation mutation; without and with the inter-population crossover.
//! It appeared that mechanisms that link subpopulations are efficient and
//! allow to find better solutions than without them."
//!
//! For each scheme this harness reports, per size, the mean best fitness
//! over the runs and the mean evaluations to best — the full scheme should
//! dominate.
//!
//! ```text
//! cargo run --release -p bench --bin ablation [--runs 10]
//! ```

use bench::{arg_usize, dataset, fit, markdown_table, objective};
use ld_core::experiment::run_experiment;
use ld_core::{GaConfig, Scheme};

fn main() {
    let n_runs = arg_usize("runs", 10);
    let data = dataset();
    let eval = objective(&data);

    let schemes: Vec<(&str, Scheme)> = vec![
        ("full", Scheme::FULL),
        (
            "no random immigrants",
            Scheme {
                random_immigrants: false,
                ..Scheme::FULL
            },
        ),
        (
            "no size mutations",
            Scheme {
                size_mutations: false,
                ..Scheme::FULL
            },
        ),
        (
            "no inter-pop crossover",
            Scheme {
                inter_crossover: false,
                ..Scheme::FULL
            },
        ),
        (
            "no subpop links",
            Scheme {
                size_mutations: false,
                inter_crossover: false,
                ..Scheme::FULL
            },
        ),
        (
            "non-adaptive rates",
            Scheme {
                adaptive_mutation: false,
                adaptive_crossover: false,
                ..Scheme::FULL
            },
        ),
        ("baseline (all off)", Scheme::BASELINE),
    ];

    println!("# §5.2 ablation — scheme comparison ({n_runs} runs each)\n");
    let config = GaConfig::default();
    let mut rows = Vec::new();
    let mut eval_rows = Vec::new();
    for (name, scheme) in schemes {
        let cfg = GaConfig {
            scheme,
            ..config.clone()
        };
        let t0 = std::time::Instant::now();
        let summary = run_experiment(&eval, &cfg, n_runs, 0, None, |_| None);
        let per_size_mean: Vec<String> =
            summary.sizes.iter().map(|s| fit(s.mean_fitness)).collect();
        // Aggregate quality score: mean over sizes of the mean best fitness
        // (sizes are not comparable in absolute terms, but the *same* sizes
        // are compared across schemes).
        let aggregate: f64 = summary
            .sizes
            .iter()
            .map(|s| s.mean_fitness)
            .filter(|f| f.is_finite())
            .sum::<f64>();
        let mut row = vec![name.to_string()];
        row.extend(per_size_mean);
        row.push(fit(aggregate));
        row.push(format!("{:.0}", summary.mean_total_evaluations()));
        row.push(format!("{:.1?}", t0.elapsed()));
        rows.push(row);

        // The paper's cost metric: evaluations needed to reach each size's
        // best ("the evaluation is costly, so an interesting indicator is
        // the number of evaluations needed").
        let mut erow = vec![name.to_string()];
        erow.extend(summary.sizes.iter().map(|s| format!("{:.0}", s.mean_evals)));
        eval_rows.push(erow);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "scheme",
                "mean k=2",
                "mean k=3",
                "mean k=4",
                "mean k=5",
                "mean k=6",
                "sum",
                "mean evals",
                "time"
            ],
            &rows
        )
    );
    println!("\n## mean evaluations to reach each size's best\n");
    println!(
        "{}",
        markdown_table(&["scheme", "k=2", "k=3", "k=4", "k=5", "k=6"], &eval_rows)
    );
    println!(
        "\nexpected shape (paper): with the full stagnation budget every\n\
         scheme eventually reaches similar fitness on this instance, but the\n\
         full scheme reaches it with the fewest evaluations — the paper's\n\
         own cost indicator; removing the mechanisms that link\n\
         subpopulations (size mutations, inter-population crossover)\n\
         roughly doubles the evaluations needed."
    );
}
