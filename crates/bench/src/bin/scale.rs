//! Large-problem experiments (paper §5.2 closing remarks): the GA on the
//! 150- and 249-SNP scale-ups, with the robustness measurement the paper
//! reports qualitatively ("solutions provided are similar from one
//! execution to another").
//!
//! ```text
//! cargo run --release -p bench --bin scale [--runs 3]
//! ```

use bench::{arg_usize, fit, markdown_table};
use ld_core::{GaConfig, GaEngine, StatsEvaluator};
use ld_data::synthetic::{scale_150, scale_249};
use ld_data::Dataset;
use ld_stats::FitnessKind;

fn jaccard(a: &[usize], b: &[usize]) -> f64 {
    let inter = a.iter().filter(|x| b.contains(x)).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

fn study(name: &str, data: &Dataset, n_runs: usize, population: usize) {
    println!(
        "## {name} — {} SNPs, {} individuals, {n_runs} runs\n",
        data.n_snps(),
        data.n_individuals()
    );
    let eval = StatsEvaluator::from_dataset(data, FitnessKind::ClumpT1).expect("groups present");
    let cfg = GaConfig {
        population_size: population,
        ..GaConfig::default()
    };
    let t0 = std::time::Instant::now();
    let runs: Vec<_> = (0..n_runs)
        .map(|i| {
            GaEngine::new(&eval, cfg.clone(), 500 + i as u64)
                .expect("valid config")
                .run()
        })
        .collect();
    let elapsed = t0.elapsed();
    let mean_evals = runs.iter().map(|r| r.total_evaluations as f64).sum::<f64>() / n_runs as f64;
    println!(
        "({elapsed:.1?} total, mean {:.0} evaluations/run)\n",
        mean_evals
    );

    let mut rows = Vec::new();
    for k in cfg.min_size..=cfg.max_size {
        let bests: Vec<_> = runs.iter().filter_map(|r| r.best_of_size(k)).collect();
        if bests.is_empty() {
            continue;
        }
        let fits: Vec<f64> = bests.iter().map(|h| h.fitness()).collect();
        let best = fits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let worst = fits.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut sims = Vec::new();
        for i in 0..bests.len() {
            for j in i + 1..bests.len() {
                sims.push(jaccard(bests[i].snps(), bests[j].snps()));
            }
        }
        let mean_sim = if sims.is_empty() {
            1.0
        } else {
            sims.iter().sum::<f64>() / sims.len() as f64
        };
        rows.push(vec![
            k.to_string(),
            fit(best),
            fit(worst),
            format!("{:.1}%", 100.0 * (best - worst) / best.max(1e-9)),
            format!("{mean_sim:.2}"),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["size", "best fit", "worst fit", "spread", "mean Jaccard"],
            &rows
        )
    );
    println!();
}

fn main() {
    let n_runs = arg_usize("runs", 3);
    println!("# Scale-up experiments (paper: 'other experiments … with larger files')\n");
    study("scale-150", &scale_150(42), n_runs, 200);
    study("scale-249", &scale_249(42), n_runs, 250);
    println!(
        "expected shape (paper): 'good robustness (solutions provided are\n\
         similar from one execution to another)' — small fitness spread and\n\
         substantial SNP-set overlap across runs, despite the larger search\n\
         spaces of Table 1."
    );
}
