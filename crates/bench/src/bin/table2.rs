//! Regenerates **Table 2** — "Results obtained by the GA for 51 SNPs":
//! the full scheme (adaptive mutation + adaptive crossover + random
//! immigrants), 10 runs; per haplotype size the best haplotype found, its
//! fitness, the mean fitness over runs, the deviation from the exact
//! optimum (exhaustive reference for the enumerable sizes), and the
//! minimum / mean number of evaluations needed to reach the best.
//!
//! ```text
//! cargo run --release -p bench --bin table2 [--runs 10] [--exactk 4]
//! ```

use bench::{arg_usize, dataset, fit, markdown_table, objective};
use ld_core::experiment::run_experiment;
use ld_core::GaConfig;
use ld_enum::exhaustive_top_k;
use std::collections::HashMap;

fn main() {
    let n_runs = arg_usize("runs", 10);
    let exact_max_k = arg_usize("exactk", 4);
    let data = dataset();
    let eval = objective(&data);
    let config = GaConfig::default();

    println!("# Table 2 — GA results for 51 SNPs ({n_runs} runs, full scheme)\n");

    // Exact optima by exhaustive enumeration for the tractable sizes.
    let mut exact: HashMap<usize, f64> = HashMap::new();
    for k in config.min_size..=config.max_size.min(exact_max_k) {
        let t0 = std::time::Instant::now();
        let top = exhaustive_top_k(&eval, k, 1);
        let best = top.best().expect("non-empty space");
        println!(
            "exact optimum size {k}: {:?} = {:.3}  (enumerated in {:.1?})",
            best.snps,
            best.fitness,
            t0.elapsed()
        );
        exact.insert(k, best.fitness);
    }
    println!();

    let t0 = std::time::Instant::now();
    let summary = run_experiment(&eval, &config, n_runs, 0, None, |k| exact.get(&k).copied());
    println!(
        "GA: {n_runs} runs in {:.1?}; mean generations {:.1}; mean total evals {:.0}\n",
        t0.elapsed(),
        summary.mean_generations(),
        summary.mean_total_evaluations()
    );

    let mut rows = Vec::new();
    for s in &summary.sizes {
        let best = s.best.as_ref();
        rows.push(vec![
            s.size.to_string(),
            best.map_or("-".into(), |h| format!("{:?}", h.snps())),
            best.map_or("-".into(), |h| fit(h.fitness())),
            fit(s.mean_fitness),
            if exact.contains_key(&s.size) {
                fit(s.deviation)
            } else {
                format!("{}*", fit(s.deviation))
            },
            s.min_evals.to_string(),
            format!("{:.1}", s.mean_evals),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "size",
                "best haplotype",
                "fitness",
                "mean",
                "dev",
                "min #eval",
                "mean #eval"
            ],
            &rows
        )
    );
    println!(
        "\n(*) deviation measured against the best-over-runs where exhaustive\n\
         enumeration is impractical (sizes > {exact_max_k}; C(51,5) = 2.3e6,\n\
         C(51,6) = 1.8e7 evaluations).\n\n\
         expected shape (paper): dev = 0 for the enumerable sizes; fitness\n\
         grows with size; evaluations to best are orders of magnitude below\n\
         the Table-1 space sizes and grow with size."
    );
}
