//! Constructive-baseline comparison — §3's central argument, demonstrated.
//!
//! The paper rejects constructive methods because good size-k haplotypes
//! need not contain good size-(k−1) haplotypes. This harness runs the beam
//! search (the constructive method §3 describes) at several widths and
//! compares its per-size champions with the exhaustive optima and the GA.
//!
//! ```text
//! cargo run --release -p bench --bin constructive [--exactk 4]
//! ```

use bench::{arg_usize, dataset, fit, markdown_table, objective};
use ld_core::evaluator::CountingEvaluator;
use ld_core::{GaConfig, GaEngine};
use ld_enum::{beam_search, exhaustive_top_k};

fn main() {
    let exact_max_k = arg_usize("exactk", 4);
    let data = dataset();
    let eval = objective(&data);

    // Exhaustive references.
    println!("# Constructive (beam) baseline vs exact optima vs GA — 51 SNPs\n");
    let mut exact = Vec::new();
    for k in 2..=exact_max_k {
        let top = exhaustive_top_k(&eval, k, 1);
        let best = top.best().expect("non-empty space").clone();
        println!(
            "exact optimum size {k}: {:?} = {:.3}",
            best.snps, best.fitness
        );
        exact.push(best);
    }
    println!();

    // Beam searches at several widths.
    let mut rows = Vec::new();
    for width in [1usize, 5, 20, 50] {
        let counted = CountingEvaluator::new(objective(&data));
        let beam = beam_search(&counted, exact_max_k, width);
        let mut row = vec![format!("beam W={width}")];
        for (i, opt) in exact.iter().enumerate() {
            let k = i + 2;
            let found = beam.best_of_size(k);
            let cell = match found {
                Some(h) if (h.fitness - opt.fitness).abs() < 1e-9 => {
                    format!("= opt ({})", fit(h.fitness))
                }
                Some(h) => format!(
                    "MISS {} ({:.0}% of opt)",
                    fit(h.fitness),
                    100.0 * h.fitness / opt.fitness
                ),
                None => "-".into(),
            };
            row.push(cell);
        }
        row.push(beam.evaluations.to_string());
        rows.push(row);
    }

    // The GA at a comparable budget.
    let ga_eval = CountingEvaluator::new(objective(&data));
    let cfg = GaConfig {
        max_size: exact_max_k,
        ..GaConfig::default()
    };
    let result = GaEngine::new(&ga_eval, cfg, 0).expect("valid config").run();
    let mut row = vec!["adaptive GA".to_string()];
    for (i, opt) in exact.iter().enumerate() {
        let k = i + 2;
        let cell = match result.best_of_size(k) {
            Some(h) if (h.fitness() - opt.fitness).abs() < 1e-9 => {
                format!("= opt ({})", fit(h.fitness()))
            }
            Some(h) => format!(
                "MISS {} ({:.0}% of opt)",
                fit(h.fitness()),
                100.0 * h.fitness() / opt.fitness
            ),
            None => "-".into(),
        };
        row.push(cell);
    }
    row.push(result.total_evaluations.to_string());
    rows.push(row);

    let mut headers = vec!["method".to_string()];
    headers.extend((2..=exact_max_k).map(|k| format!("size {k}")));
    headers.push("evaluations".into());
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", markdown_table(&headers_ref, &rows));

    println!(
        "\nexpected shape (paper §3): narrow beams miss optima at some size\n\
         (good size-k haplotypes are not extensions of good size-(k-1)\n\
         ones); the GA reaches the exact optima at a comparable or smaller\n\
         evaluation budget."
    );
}
