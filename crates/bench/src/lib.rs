//! Shared helpers for the experiment harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index); this library holds the common
//! plumbing: the canonical dataset/objective construction, markdown table
//! rendering, and simple CLI-argument parsing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;

use ld_core::StatsEvaluator;
use ld_data::Dataset;
use ld_stats::FitnessKind;

/// Canonical experiment dataset: the synthetic 51-SNP Lille stand-in with
/// the fixed seed used by every harness binary (so results are comparable
/// across binaries and runs).
pub const DATASET_SEED: u64 = 42;

/// Build the canonical dataset.
pub fn dataset() -> Dataset {
    ld_data::synthetic::lille_51(DATASET_SEED)
}

/// Build the paper's objective (CLUMP T1) over the canonical dataset.
pub fn objective(data: &Dataset) -> StatsEvaluator {
    StatsEvaluator::from_dataset(data, FitnessKind::ClumpT1)
        .expect("canonical dataset has both groups")
}

/// Render a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&render_row(&sep, &widths));
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Parse `--name value` style arguments with a default.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == format!("--{name}"))
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

/// Parse an optional `--name value` string argument.
pub fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == format!("--{name}"))
        .map(|w| w[1].clone())
}

/// Write `report` to `path` (the `--report` flag of every harness binary)
/// and note it on stderr, so table output on stdout stays clean.
pub fn write_report(report: &ld_observe::RunReport, path: &str) {
    match report.write(path) {
        Ok(()) => eprintln!("run report written to {path}"),
        Err(e) => eprintln!("failed to write run report {path}: {e}"),
    }
}

/// Format a fitness value the way the paper's tables do.
pub fn fit(v: f64) -> String {
    if v.is_nan() {
        "n/a".into()
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shapes_up() {
        let t = markdown_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbbb"));
        assert!(lines[1].starts_with("| ---"));
        // All lines are equally wide.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn canonical_objective_builds() {
        let d = dataset();
        let o = objective(&d);
        use ld_core::Evaluator;
        assert_eq!(o.n_snps(), 51);
    }

    #[test]
    fn fit_formats() {
        assert_eq!(fit(1.23456), "1.235");
        assert_eq!(fit(f64::NAN), "n/a");
    }
}
