//! Criterion micro-benches for the data substrate: synthetic generation,
//! table construction, genotype gathering, and combinatorial (un)ranking —
//! the fixed costs around the GA's hot loop.
//!
//! `cargo bench -p bench --bench data_structures`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ld_data::synthetic::lille_51_config;
use ld_data::{AlleleFreqTable, LdTable};
use ld_enum::combinations::{for_each_combination, unrank};
use std::hint::black_box;

fn data_structures(c: &mut Criterion) {
    c.bench_function("synthetic_lille_51_generation", |b| {
        let cfg = lille_51_config();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            cfg.generate(black_box(seed)).unwrap().n_individuals()
        })
    });

    let data = bench::dataset();
    c.bench_function("allele_freq_table_51snps", |b| {
        b.iter(|| AlleleFreqTable::from_matrix(black_box(&data.genotypes)).len())
    });

    c.bench_function("ld_table_51snps_1275pairs", |b| {
        b.iter(|| LdTable::from_matrix(black_box(&data.genotypes)).n_snps())
    });

    c.bench_function("gather_6snps_176rows", |b| {
        let snps = [8usize, 12, 15, 21, 32, 43];
        let mut buf = Vec::new();
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..data.n_individuals() {
                data.genotypes.gather_into(i, black_box(&snps), &mut buf);
                acc += buf.len();
            }
            acc
        })
    });

    let mut group = c.benchmark_group("combinations");
    group.bench_function("walk_C51_3_20825", |b| {
        b.iter(|| {
            let mut count = 0u64;
            for_each_combination(51, 3, |c| {
                count += c[0] as u64;
            });
            count
        })
    });
    for k in [3usize, 5] {
        group.bench_with_input(BenchmarkId::new("unrank_C51", k), &k, |b, &k| {
            let mut r = 0u128;
            b.iter(|| {
                r = (r + 9973) % 20000;
                unrank(black_box(r), 51, k)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, data_structures);
criterion_main!(benches);
