//! Observer overhead: the same GA run with no observer, with a ring-sink
//! observer, and with a flight-recorder observer.
//!
//! The observability plane's design bet is that instrumentation left in
//! the engine costs ~nothing when disabled (a branch on `None`) and
//! stays cheap when enabled (bounded rings, no per-event I/O). This
//! bench pins both claims as ratios: ns per generation for each
//! configuration, plus the enabled/disabled overhead factor. Ratios of
//! same-process measurements transfer across hosts far better than raw
//! nanoseconds, so the committed JSON doubles as a reviewable baseline.
//!
//! Uses the repo's hand-rolled timing loop (not criterion) so it accepts
//! the standard `--report <path>` flag and emits
//! `BENCH_observe_overhead.json` through the same `RunReport` machinery
//! as the other harnesses.
//!
//! `cargo bench -p bench --bench observe_overhead -- --quick --report BENCH_observe_overhead.json`

use ld_core::evaluator::FnEvaluator;
use ld_core::{GaConfig, GaEngine};
use ld_data::SnpId;
use ld_observe::{FlightRecorder, Observer, Registry, RingSink};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn ga_cfg() -> GaConfig {
    GaConfig {
        population_size: 40,
        min_size: 2,
        max_size: 4,
        matings_per_generation: 6,
        stagnation_limit: 1_000, // never stop early: fixed generation count
        max_generations: 30,
        ..GaConfig::default()
    }
}

/// One full GA run under `observer`; returns (ns per generation,
/// generations). Same evaluator, config and seed every time, so all
/// configurations execute identical GA arithmetic.
fn run_once(observer: Observer, seed: u64) -> (f64, usize) {
    // A deliberately cheap objective: with evaluation nearly free, the
    // observer's share of the generation is at its most visible.
    let eval = FnEvaluator::new(51, |s: &[SnpId]| {
        s.iter().map(|&x| x as f64).sum::<f64>() + 10.0 * s.len() as f64
    });
    let start = Instant::now();
    let result = GaEngine::new(&eval, ga_cfg(), seed)
        .unwrap()
        .with_observer(observer)
        .run();
    let ns = start.elapsed().as_nanos() as f64;
    black_box(result.total_evaluations);
    (ns / result.generations as f64, result.generations)
}

/// Best (minimum) ns/generation per configuration across `rounds`
/// interleaved repetitions, so frequency scaling hits all alike.
fn interleaved_mins(rounds: usize, paths: &mut [&mut dyn FnMut() -> f64]) -> Vec<f64> {
    for f in paths.iter_mut() {
        f();
    }
    let mut best = vec![f64::INFINITY; paths.len()];
    for _ in 0..rounds {
        for (b, f) in best.iter_mut().zip(paths.iter_mut()) {
            *b = b.min(f());
        }
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { 3 } else { 9 };
    let seed = 11u64;

    let mut disabled = || run_once(Observer::disabled(), seed).0;
    let mut ring = || {
        let sink = Arc::new(RingSink::new(1 << 14));
        run_once(Observer::new("ring", sink, Registry::new()), seed).0
    };
    let mut flight = || {
        // No path attached: pure in-memory black box, as a run carries it
        // between dumps (persistence is off the generation's path).
        let recorder = Arc::new(FlightRecorder::new(1 << 14));
        run_once(Observer::new("flight", recorder, Registry::new()), seed).0
    };
    let best = interleaved_mins(rounds, &mut [&mut disabled, &mut ring, &mut flight]);
    let (disabled_ns, ring_ns, flight_ns) = (best[0], best[1], best[2]);
    let ring_overhead = ring_ns / disabled_ns;
    let flight_overhead = flight_ns / disabled_ns;

    println!(
        "{}",
        bench::markdown_table(
            &["config", "ns_per_generation", "overhead_vs_disabled",],
            &[
                vec![
                    "disabled".into(),
                    format!("{disabled_ns:.0}"),
                    "1.00".into()
                ],
                vec![
                    "ring".into(),
                    format!("{ring_ns:.0}"),
                    format!("{ring_overhead:.2}"),
                ],
                vec![
                    "flight".into(),
                    format!("{flight_ns:.0}"),
                    format!("{flight_overhead:.2}"),
                ],
            ]
        )
    );

    if let Some(path) = bench::arg_str("report") {
        let report = ld_observe::RunReport::new("observe_overhead")
            .section("params", &[("quick", quick as usize), ("rounds", rounds)])
            .raw_section(
                "observe_overhead",
                format!(
                    "{{\"disabled_ns_per_gen\":{disabled_ns:.1},\
                     \"ring_ns_per_gen\":{ring_ns:.1},\
                     \"flight_ns_per_gen\":{flight_ns:.1},\
                     \"ring_overhead\":{ring_overhead:.4},\
                     \"flight_overhead\":{flight_overhead:.4}}}"
                ),
            );
        bench::write_report(&report, &path);
    }
}
