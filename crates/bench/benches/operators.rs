//! Criterion micro-benches for the GA's building blocks: the genetic
//! operators, the replacement rule, and the adaptive-rate update. These
//! quantify the "additional computations" the paper notes its advanced
//! mechanisms require (they are negligible next to an evaluation).
//!
//! `cargo bench -p bench --bench operators`

use criterion::{criterion_group, criterion_main, Criterion};
use ld_core::adaptive::AdaptiveRates;
use ld_core::ops::crossover::{inter_crossover, uniform_crossover};
use ld_core::ops::mutation::{apply_mutation, MutationKind};
use ld_core::rng::random_haplotype;
use ld_core::subpop::SubPopulation;
use ld_core::Haplotype;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn operators(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let p6a = random_haplotype(&mut rng, 51, 6);
    let p6b = random_haplotype(&mut rng, 51, 6);
    let p3 = random_haplotype(&mut rng, 51, 3);

    c.bench_function("uniform_crossover_k6", |b| {
        b.iter(|| uniform_crossover(black_box(&p6a), black_box(&p6b), 51, &mut rng))
    });
    c.bench_function("inter_crossover_k3_k6", |b| {
        b.iter(|| inter_crossover(black_box(&p3), black_box(&p6a), 51, &mut rng))
    });
    c.bench_function("snp_mutation_4tries_k6", |b| {
        b.iter(|| apply_mutation(MutationKind::Snp, black_box(&p6a), 51, 2, 6, 4, &mut rng))
    });
    c.bench_function("augmentation_k3", |b| {
        b.iter(|| {
            apply_mutation(
                MutationKind::Augmentation,
                black_box(&p3),
                51,
                2,
                6,
                1,
                &mut rng,
            )
        })
    });

    c.bench_function("subpop_insert_cap50", |b| {
        let mut pool: Vec<Haplotype> = (0..500)
            .map(|i| {
                let mut h = random_haplotype(&mut rng, 51, 4);
                h.set_fitness((i % 97) as f64);
                h
            })
            .collect();
        b.iter(|| {
            let mut sp = SubPopulation::new(4, 50);
            for h in pool.drain(..).take(0) {
                // drained pool trick avoids reallocation; reinsert below
                let _ = sp.try_insert(h);
            }
            // fresh inserts from clones
            for i in 0..200 {
                let mut h = random_haplotype(&mut rng, 51, 4);
                h.set_fitness((i % 97) as f64);
                let _ = sp.try_insert(h);
            }
            sp.len()
        })
    });

    c.bench_function("adaptive_rate_update_3ops", |b| {
        b.iter(|| {
            let mut a = AdaptiveRates::new(3, 0.9, 0.05, true);
            for i in 0..100 {
                a.record(i % 3, (i as f64 % 7.0 - 3.0) / 7.0);
            }
            a.end_generation();
            a.rates()[0]
        })
    });
}

criterion_group!(benches, operators);
criterion_main!(benches);
