//! Criterion bench for the §4.5 master/slaves evaluation phase: batch
//! throughput vs worker count on a latency-padded objective (the paper's
//! cluster regime, where slaves are remote nodes and the master waits).
//!
//! `cargo bench -p bench --bench parallel_speedup`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ld_core::evaluator::FnEvaluator;
use ld_core::rng::random_haplotype;
use ld_core::{Evaluator, Haplotype};
use ld_parallel::MasterSlaveEvaluator;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn padded_objective() -> FnEvaluator<impl Fn(&[usize]) -> f64 + Send + Sync> {
    FnEvaluator::new(51, |s: &[usize]| {
        // 500 µs pad stands in for a remote-node round trip.
        std::thread::sleep(Duration::from_micros(500));
        s.iter().sum::<usize>() as f64
    })
}

fn batch() -> Vec<Haplotype> {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    (0..32).map(|_| random_haplotype(&mut rng, 51, 4)).collect()
}

fn parallel_speedup(c: &mut Criterion) {
    let proto = batch();
    let mut group = c.benchmark_group("master_slave_batch32_padded");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        let eval = padded_objective();
        b.iter(|| {
            let mut batch = proto.clone();
            eval.evaluate_batch(&mut batch);
            batch[0].fitness()
        })
    });
    for workers in [1usize, 2, 4, 8] {
        let eval = MasterSlaveEvaluator::new(padded_objective(), workers);
        group.bench_with_input(BenchmarkId::new("slaves", workers), &workers, |b, _| {
            b.iter(|| {
                let mut batch = proto.clone();
                eval.evaluate_batch(&mut batch);
                batch[0].fitness()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, parallel_speedup);
criterion_main!(benches);
