//! Kernel throughput: legacy allocating evaluation path vs the
//! scratch-workspace path vs the bit-packed word-wide path, for haplotype
//! widths k = 2..=8.
//!
//! Uses a hand-rolled timing loop instead of the criterion harness so the
//! bench can accept the repo's standard `--report <path>` flag (criterion
//! rejects unknown CLI arguments) and emit `BENCH_eval_kernel.json`
//! through the same `RunReport` machinery as the `src/bin/` harnesses.
//! That JSON is also the committed baseline of the CI bench-regression
//! gate (`bench_gate`), which compares the packed-vs-scratch speedup per
//! k — a ratio of two same-process measurements, so it transfers across
//! hosts far better than raw nanoseconds.
//!
//! `cargo bench -p bench --bench eval_kernel -- --quick --report BENCH_eval_kernel.json`

use ld_stats::{EvalPipeline, EvalScratch, FitnessKind, KernelPath};
use std::hint::black_box;
use std::time::Instant;

/// Mean nanoseconds per call over one timed chunk of `iters` calls.
fn time_round(iters: usize, f: &mut dyn FnMut() -> f64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Best (minimum) per-call time for each path across `rounds` timed chunks
/// after a warm-up chunk. Paths are interleaved round-by-round so frequency
/// scaling or noisy neighbours hit all of them alike; the minimum then
/// discards the noise.
fn interleaved_mins(
    rounds: usize,
    iters: usize,
    paths: &mut [&mut dyn FnMut() -> f64],
) -> Vec<f64> {
    for f in paths.iter_mut() {
        time_round(iters, *f);
    }
    let mut best = vec![f64::INFINITY; paths.len()];
    for _ in 0..rounds {
        for (b, f) in best.iter_mut().zip(paths.iter_mut()) {
            *b = b.min(time_round(iters, *f));
        }
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Wider haplotypes cost exponentially more EM work; scale iteration
    // counts down with k so total wall-clock stays bounded.
    let base = if quick { 60 } else { 400 };
    let rounds = if quick { 3 } else { 7 };

    let data = bench::dataset();
    let packed_pipe =
        EvalPipeline::new(&data, FitnessKind::ClumpT1).expect("dataset has both groups");
    assert_eq!(packed_pipe.kernel_path(), KernelPath::Packed);
    let scratch_pipe = packed_pipe.clone().with_kernel_path(KernelPath::Scratch);
    let mut scratch_ws = EvalScratch::new();
    let mut packed_ws = EvalScratch::new();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut report_rows: Vec<(usize, f64, f64, f64, f64, f64)> = Vec::new();
    for k in 2usize..=8 {
        // Fixed, evenly spread SNP set so all paths see identical work.
        let snps: Vec<usize> = (0..k).map(|i| i * data.n_snps() / k).collect();
        let iters = (base / (1 << (k.saturating_sub(2)))).max(3);

        #[allow(deprecated)] // the legacy path is the comparison baseline
        let mut legacy = || packed_pipe.evaluate_legacy(&snps).unwrap();
        let mut scratch = || scratch_pipe.evaluate_with(&mut scratch_ws, &snps).unwrap();
        let mut packed = || packed_pipe.evaluate_with(&mut packed_ws, &snps).unwrap();
        let best = interleaved_mins(rounds, iters, &mut [&mut legacy, &mut scratch, &mut packed]);
        let (legacy_ns, scratch_ns, packed_ns) = (best[0], best[1], best[2]);
        let speedup_scratch = legacy_ns / scratch_ns;
        let speedup_packed = scratch_ns / packed_ns;

        rows.push(vec![
            k.to_string(),
            iters.to_string(),
            format!("{legacy_ns:.0}"),
            format!("{scratch_ns:.0}"),
            format!("{packed_ns:.0}"),
            format!("{speedup_scratch:.2}"),
            format!("{speedup_packed:.2}"),
        ]);
        report_rows.push((
            k,
            legacy_ns,
            scratch_ns,
            packed_ns,
            speedup_scratch,
            speedup_packed,
        ));
    }

    println!(
        "{}",
        bench::markdown_table(
            &[
                "k",
                "iters",
                "legacy_ns",
                "scratch_ns",
                "packed_ns",
                "scratch_speedup",
                "packed_speedup",
            ],
            &rows
        )
    );

    if let Some(path) = bench::arg_str("report") {
        let report = ld_observe::RunReport::new("eval_kernel")
            .section("params", &[("quick", quick as usize), ("base_iters", base)])
            .section(bench::gate::SECTION, &report_rows);
        bench::write_report(&report, &path);
    }
}
