//! Kernel throughput: legacy allocating evaluation path vs the
//! scratch-workspace path, for haplotype widths k = 2..=8.
//!
//! Uses a hand-rolled timing loop instead of the criterion harness so the
//! bench can accept the repo's standard `--report <path>` flag (criterion
//! rejects unknown CLI arguments) and emit `BENCH_eval_kernel.json`
//! through the same `RunReport` machinery as the `src/bin/` harnesses.
//!
//! `cargo bench -p bench --bench eval_kernel -- --quick --report BENCH_eval_kernel.json`

use ld_stats::{EvalPipeline, EvalScratch, FitnessKind};
use std::hint::black_box;
use std::time::Instant;

/// Best (minimum) mean nanoseconds per call across `rounds` timed chunks
/// of `iters` calls each, after a warm-up chunk. The caller interleaves
/// the two measured paths round-by-round so frequency scaling or noisy
/// neighbours hit both paths alike; the minimum then discards the noise.
fn time_round(iters: usize, f: &mut impl FnMut() -> f64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn interleaved_min_ns(
    rounds: usize,
    iters: usize,
    mut a: impl FnMut() -> f64,
    mut b: impl FnMut() -> f64,
) -> (f64, f64) {
    time_round(iters, &mut a);
    time_round(iters, &mut b);
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        best_a = best_a.min(time_round(iters, &mut a));
        best_b = best_b.min(time_round(iters, &mut b));
    }
    (best_a, best_b)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Wider haplotypes cost exponentially more EM work; scale iteration
    // counts down with k so total wall-clock stays bounded.
    let base = if quick { 60 } else { 400 };
    let rounds = if quick { 3 } else { 7 };

    let data = bench::dataset();
    let pipeline = EvalPipeline::new(&data, FitnessKind::ClumpT1).expect("dataset has both groups");
    let mut scratch = EvalScratch::new();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut report_rows: Vec<(usize, f64, f64, f64)> = Vec::new();
    for k in 2usize..=8 {
        // Fixed, evenly spread SNP set so both paths see identical work.
        let snps: Vec<usize> = (0..k).map(|i| i * data.n_snps() / k).collect();
        let iters = (base / (1 << (k.saturating_sub(2)))).max(3);

        #[allow(deprecated)] // the legacy path is the comparison baseline
        let (legacy_ns, scratch_ns) = interleaved_min_ns(
            rounds,
            iters,
            || pipeline.evaluate_legacy(&snps).unwrap(),
            || pipeline.evaluate_with(&mut scratch, &snps).unwrap(),
        );
        let speedup = legacy_ns / scratch_ns;

        rows.push(vec![
            k.to_string(),
            iters.to_string(),
            format!("{legacy_ns:.0}"),
            format!("{scratch_ns:.0}"),
            format!("{speedup:.2}"),
        ]);
        report_rows.push((k, legacy_ns, scratch_ns, speedup));
    }

    println!(
        "{}",
        bench::markdown_table(&["k", "iters", "legacy_ns", "scratch_ns", "speedup"], &rows)
    );

    if let Some(path) = bench::arg_str("report") {
        let report = ld_observe::RunReport::new("eval_kernel")
            .section("params", &[("quick", quick as usize), ("base_iters", base)])
            .section("rows_k_legacy_ns_scratch_ns_speedup", &report_rows);
        bench::write_report(&report, &path);
    }
}
