//! Criterion bench for a complete (small) GA run on the synthetic Lille
//! dataset — the end-to-end cost a user pays per configuration tested.
//!
//! `cargo bench -p bench --bench ga_run`

use criterion::{criterion_group, criterion_main, Criterion};
use ld_core::{GaConfig, GaEngine};
use std::hint::black_box;

fn ga_run(c: &mut Criterion) {
    let data = bench::dataset();
    let eval = bench::objective(&data);
    let config = GaConfig {
        population_size: 60,
        min_size: 2,
        max_size: 4,
        matings_per_generation: 8,
        stagnation_limit: 10,
        max_generations: 30,
        ..GaConfig::default()
    };
    let mut group = c.benchmark_group("ga_small_run");
    group.sample_size(10);
    group.bench_function("sizes2-4_pop60", |b| {
        b.iter(|| {
            let result = GaEngine::new(&eval, black_box(config.clone()), 1)
                .expect("valid config")
                .run();
            result.total_evaluations
        })
    });
    group.finish();
}

criterion_group!(benches, ga_run);
criterion_main!(benches);
