//! Criterion bench for the EH-DIALL EM substrate: fit cost vs haplotype
//! width and vs sample size — the two scaling axes that make the paper's
//! evaluation expensive.
//!
//! `cargo bench -p bench --bench em_bench`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ld_data::{Genotype, Status};
use ld_stats::em::EmEstimator;
use std::hint::black_box;

/// Gather the affected group's genotype vectors at the first `k` SNPs.
fn group_genotypes(k: usize, rows: &[usize], data: &ld_data::Dataset) -> Vec<Vec<Genotype>> {
    let snps: Vec<usize> = (0..k).collect();
    rows.iter()
        .map(|&r| data.genotypes.gather(r, &snps))
        .collect()
}

fn em_bench(c: &mut Criterion) {
    let data = bench::dataset();
    let affected = data.rows_with_status(Status::Affected);
    let estimator = EmEstimator::default();

    let mut group = c.benchmark_group("em_fit_by_width");
    group.sample_size(20);
    for k in [2usize, 3, 4, 5, 6, 7, 8] {
        let gs = group_genotypes(k, &affected, &data);
        group.bench_with_input(BenchmarkId::from_parameter(k), &gs, |b, gs| {
            b.iter(|| estimator.estimate(black_box(gs)).unwrap().log_likelihood)
        });
    }
    group.finish();

    let mut group = c.benchmark_group("em_fit_by_sample_size");
    group.sample_size(20);
    for n in [13usize, 26, 53] {
        let gs = group_genotypes(5, &affected[..n], &data);
        group.bench_with_input(BenchmarkId::from_parameter(n), &gs, |b, gs| {
            b.iter(|| estimator.estimate(black_box(gs)).unwrap().log_likelihood)
        });
    }
    group.finish();
}

criterion_group!(benches, em_bench);
criterion_main!(benches);
