//! Criterion bench for the EH-DIALL EM substrate: fit cost vs haplotype
//! width and vs sample size — the two scaling axes that make the paper's
//! evaluation expensive.
//!
//! `cargo bench -p bench --bench em_bench`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ld_data::{ColumnMatrix, Status};
use ld_stats::em::EmEstimator;
use ld_stats::{EmScratch, HaplotypeDist};
use std::hint::black_box;

fn em_bench(c: &mut Criterion) {
    let data = bench::dataset();
    let affected = data.rows_with_status(Status::Affected);
    let estimator = EmEstimator::default();
    let mut scratch = EmScratch::new();
    let mut fit = HaplotypeDist::empty();

    let mut group = c.benchmark_group("em_fit_by_width");
    group.sample_size(20);
    for k in [2usize, 3, 4, 5, 6, 7, 8] {
        let cols = ColumnMatrix::from_matrix_rows(&data.genotypes, &affected).unwrap();
        let snps: Vec<usize> = (0..k).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &snps, |b, snps| {
            b.iter(|| {
                estimator
                    .estimate_into(&[&cols], black_box(snps), &mut scratch, &mut fit)
                    .unwrap();
                fit.log_likelihood
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("em_fit_by_sample_size");
    group.sample_size(20);
    for n in [13usize, 26, 53] {
        let cols = ColumnMatrix::from_matrix_rows(&data.genotypes, &affected[..n]).unwrap();
        let snps: Vec<usize> = (0..5).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &snps, |b, snps| {
            b.iter(|| {
                estimator
                    .estimate_into(&[&cols], black_box(snps), &mut scratch, &mut fit)
                    .unwrap();
                fit.log_likelihood
            })
        });
    }
    group.finish();
}

criterion_group!(benches, em_bench);
criterion_main!(benches);
