//! Criterion bench for **Figure 4**: evaluation cost vs haplotype size.
//!
//! `cargo bench -p bench --bench eval_time`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ld_core::rng::random_haplotype;
use ld_core::Evaluator;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn eval_time(c: &mut Criterion) {
    let data = bench::dataset();
    let eval = bench::objective(&data);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut group = c.benchmark_group("figure4_eval_time");
    group.sample_size(20);
    for k in [2usize, 3, 4, 5, 6, 7] {
        // A fixed set of representative haplotypes per size.
        let haps: Vec<Vec<usize>> = (0..8)
            .map(|_| random_haplotype(&mut rng, data.n_snps(), k).snps().to_vec())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &haps, |b, haps| {
            b.iter(|| {
                let mut acc = 0.0;
                for h in haps {
                    acc += eval.evaluate_one(black_box(h));
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, eval_time);
criterion_main!(benches);
