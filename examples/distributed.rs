//! Distributed evaluation — the paper's §4.5 deployment, end to end.
//!
//! The paper ran its master/slaves model on a PVM cluster: slave processes
//! on remote nodes loaded the dataset once, then exchanged
//! `(solution → fitness)` messages with the master. This example rebuilds
//! that topology on loopback TCP: N slave servers (each owning its own
//! copy of the objective, as PVM slaves owned their data) and a master
//! pool driving the GA through the network.
//!
//! For a real multi-host run, start slaves with
//! `hga slave --data genotypes.tsv --bind 0.0.0.0:7171` and the master
//! with `hga run --data genotypes.tsv --slaves host1:7171,host2:7171`.
//!
//! ```text
//! cargo run --release --example distributed [--slaves 4]
//! ```

use haplo_ga::net::LocalCluster;
use haplo_ga::prelude::*;

fn main() {
    let n_slaves: usize = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--slaves")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(4);

    let data = haplo_ga::data::synthetic::lille_51(42);
    println!(
        "spawning {n_slaves} loopback evaluation slaves for {} ...",
        data.label
    );
    let cluster = LocalCluster::spawn(n_slaves, || {
        // Each slave loads the objective once — "the slaves are initiated
        // at the beginning and access only once to the data" (§4.5).
        let data = haplo_ga::data::synthetic::lille_51(42);
        StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap()
    })
    .expect("loopback cluster");
    for s in cluster.slaves() {
        println!("  slave at {}", s.addr());
    }

    let config = GaConfig {
        population_size: 100,
        max_size: 5,
        stagnation_limit: 30,
        ..GaConfig::default()
    };
    println!("\nrunning the GA through the TCP pool ...");
    let t0 = std::time::Instant::now();
    let result = GaEngine::new(cluster.pool(), config, 7)
        .expect("valid config")
        .run();
    println!(
        "done in {:.1?}: {} generations, {} evaluations\n",
        t0.elapsed(),
        result.generations,
        result.total_evaluations
    );

    println!("per-slave load (on-demand task farming):");
    for (i, s) in cluster.slaves().iter().enumerate() {
        println!("  slave {i}: {} evaluations", s.served());
    }
    assert_eq!(cluster.total_served(), result.total_evaluations);

    println!("\nchampions:");
    for k in 2..=5 {
        if let Some(best) = result.best_of_size(k) {
            println!("  size {k}: {best}");
        }
    }
}
