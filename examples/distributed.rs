//! Distributed evaluation — the paper's §4.5 deployment, end to end.
//!
//! The paper ran its master/slaves model on a PVM cluster: slave processes
//! on remote nodes loaded the dataset once, then exchanged
//! `(solution → fitness)` messages with the master. This example rebuilds
//! that topology on loopback TCP: N slave servers (each owning its own
//! copy of the objective, as PVM slaves owned their data) and a master
//! pool driving the GA through the network.
//!
//! For a real multi-host run, start slaves with
//! `hga slave --data genotypes.tsv --bind 0.0.0.0:7171` and the master
//! with `hga run --data genotypes.tsv --slaves host1:7171,host2:7171`.
//!
//! ```text
//! cargo run --release --example distributed [--slaves 4] [--observe-addr 127.0.0.1:9464]
//! ```
//!
//! With `--observe-addr`, the run is traced: events + timed spans go to
//! `distributed-events.jsonl`, a live scrape endpoint serves
//! `/metrics`, `/health` and `/spans` on the given address while the GA
//! runs, and a per-generation latency attribution is printed at the end
//! (also available post-hoc via `trace-summary distributed-events.jsonl`).

use haplo_ga::net::LocalCluster;
use haplo_ga::observe::{
    ExposeServer, FanoutSink, JsonlSink, Observer, Registry, RingSink, Sink, TraceSummary,
};
use haplo_ga::prelude::*;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_slaves: usize = args
        .windows(2)
        .find(|w| w[0] == "--slaves")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(4);
    let observe_addr: Option<String> = args
        .windows(2)
        .find(|w| w[0] == "--observe-addr")
        .map(|w| w[1].clone());

    let data = haplo_ga::data::synthetic::lille_51(42);
    println!(
        "spawning {n_slaves} loopback evaluation slaves for {} ...",
        data.label
    );
    let cluster = LocalCluster::spawn(n_slaves, || {
        // Each slave loads the objective once — "the slaves are initiated
        // at the beginning and access only once to the data" (§4.5).
        let data = haplo_ga::data::synthetic::lille_51(42);
        StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap()
    })
    .expect("loopback cluster");
    for s in cluster.slaves() {
        println!("  slave at {}", s.addr());
    }

    // With --observe-addr: trace the run and serve live metrics.
    let (observer, ring, server) = match &observe_addr {
        Some(addr) => {
            let ring = Arc::new(RingSink::new(1 << 16));
            let jsonl =
                Arc::new(JsonlSink::create("distributed-events.jsonl").expect("events file"));
            let sink = Arc::new(FanoutSink::new(vec![ring.clone() as Arc<dyn Sink>, jsonl]));
            let observer = Observer::new("distributed-example", sink, Registry::new());
            let server = ExposeServer::bind(addr, observer.clone()).expect("bind scrape endpoint");
            println!("\nscrape endpoint live at http://{}/", server.addr());
            println!("  curl http://{}/metrics", server.addr());
            println!("  curl http://{}/health", server.addr());
            println!("  curl http://{}/spans", server.addr());
            cluster.pool().set_observer(observer.clone());
            (observer, Some(ring), Some(server))
        }
        None => (Observer::disabled(), None, None),
    };

    let config = GaConfig {
        population_size: 100,
        max_size: 5,
        stagnation_limit: 30,
        ..GaConfig::default()
    };
    println!("\nrunning the GA through the TCP pool ...");
    let t0 = std::time::Instant::now();
    let result = GaEngine::new(cluster.pool(), config, 7)
        .expect("valid config")
        .with_observer(observer.clone())
        .run();
    println!(
        "done in {:.1?}: {} generations, {} evaluations\n",
        t0.elapsed(),
        result.generations,
        result.total_evaluations
    );

    println!("per-slave load (on-demand task farming):");
    for (i, s) in cluster.slaves().iter().enumerate() {
        println!("  slave {i}: {} evaluations", s.served());
    }
    assert_eq!(cluster.total_served(), result.total_evaluations);

    println!("\nchampions:");
    for k in 2..=5 {
        if let Some(best) = result.best_of_size(k) {
            println!("  size {k}: {best}");
        }
    }

    // Latency attribution: where did the evaluation time actually go?
    if let Some(ring) = ring {
        observer.flush();
        let summary = TraceSummary::from_envelopes(&ring.take());
        println!("\nlatency attribution (also in distributed-events.jsonl):");
        print!("{}", summary.render());
    }
    drop(server); // keep the endpoint alive for the whole run
}
