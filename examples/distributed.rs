//! Distributed evaluation — the paper's §4.5 deployment, end to end.
//!
//! The paper ran its master/slaves model on a PVM cluster: slave processes
//! on remote nodes loaded the dataset once, then exchanged
//! `(solution → fitness)` messages with the master. This example rebuilds
//! that topology on loopback TCP: N slave servers (each owning its own
//! copy of the objective, as PVM slaves owned their data) and a master
//! pool driving the GA through the network.
//!
//! For a real multi-host run, start slaves with
//! `hga slave --data genotypes.tsv --bind 0.0.0.0:7171` and the master
//! with `hga run --data genotypes.tsv --slaves host1:7171,host2:7171`.
//!
//! ```text
//! cargo run --release --example distributed [--slaves 4] [--runs N] [--observe-addr 127.0.0.1:9464]
//! ```
//!
//! With `--observe-addr`, the run is traced: events + timed spans go to
//! `distributed-events.jsonl`, a live scrape endpoint serves
//! `/metrics`, `/health` and `/spans` on the given address while the GA
//! runs, and a per-generation latency attribution is printed at the end
//! (also available post-hoc via `trace-summary distributed-events.jsonl`).
//!
//! With `--runs N` (N > 1), the example switches to the *multi-tenant*
//! topology: one shared slave fleet, one [`haplo_ga::net::EvalServer`],
//! and N concurrent GA runs with distinct datasets and priorities
//! multiplexed over it. Runs are submitted through the same JSON API
//! (`POST /runs`, `GET /runs/<id>/result`) that `--observe-addr` mounts
//! on the scrape endpoint.

use haplo_ga::net::LocalCluster;
use haplo_ga::observe::{
    ExposeServer, FanoutSink, JsonlSink, Observer, Registry, RingSink, Sink, TraceSummary,
};
use haplo_ga::prelude::*;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_slaves: usize = args
        .windows(2)
        .find(|w| w[0] == "--slaves")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(4);
    let runs: usize = args
        .windows(2)
        .find(|w| w[0] == "--runs")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(1);
    let observe_addr: Option<String> = args
        .windows(2)
        .find(|w| w[0] == "--observe-addr")
        .map(|w| w[1].clone());
    if runs > 1 {
        run_multi_tenant(runs, n_slaves, observe_addr);
        return;
    }

    let data = haplo_ga::data::synthetic::lille_51(42);
    println!(
        "spawning {n_slaves} loopback evaluation slaves for {} ...",
        data.label
    );
    let cluster = LocalCluster::spawn(n_slaves, || {
        // Each slave loads the objective once — "the slaves are initiated
        // at the beginning and access only once to the data" (§4.5).
        let data = haplo_ga::data::synthetic::lille_51(42);
        StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap()
    })
    .expect("loopback cluster");
    for s in cluster.slaves() {
        println!("  slave at {}", s.addr());
    }

    // With --observe-addr: trace the run and serve live metrics.
    let (observer, ring, server) = match &observe_addr {
        Some(addr) => {
            let ring = Arc::new(RingSink::new(1 << 16));
            let jsonl =
                Arc::new(JsonlSink::create("distributed-events.jsonl").expect("events file"));
            let sink = Arc::new(FanoutSink::new(vec![ring.clone() as Arc<dyn Sink>, jsonl]));
            let observer = Observer::new("distributed-example", sink, Registry::new());
            let server = ExposeServer::bind(addr, observer.clone()).expect("bind scrape endpoint");
            println!("\nscrape endpoint live at http://{}/", server.addr());
            println!("  curl http://{}/metrics", server.addr());
            println!("  curl http://{}/health", server.addr());
            println!("  curl http://{}/spans", server.addr());
            cluster.pool().set_observer(observer.clone());
            (observer, Some(ring), Some(server))
        }
        None => (Observer::disabled(), None, None),
    };

    let config = GaConfig {
        population_size: 100,
        max_size: 5,
        stagnation_limit: 30,
        ..GaConfig::default()
    };
    println!("\nrunning the GA through the TCP pool ...");
    let t0 = std::time::Instant::now();
    let result = GaEngine::new(cluster.pool(), config, 7)
        .expect("valid config")
        .with_observer(observer.clone())
        .run();
    println!(
        "done in {:.1?}: {} generations, {} evaluations\n",
        t0.elapsed(),
        result.generations,
        result.total_evaluations
    );

    println!("per-slave load (on-demand task farming):");
    for (i, s) in cluster.slaves().iter().enumerate() {
        println!("  slave {i}: {} evaluations", s.served());
    }
    assert_eq!(cluster.total_served(), result.total_evaluations);

    println!("\nchampions:");
    for k in 2..=5 {
        if let Some(best) = result.best_of_size(k) {
            println!("  size {k}: {best}");
        }
    }

    // Latency attribution: where did the evaluation time actually go?
    if let Some(ring) = ring {
        observer.flush();
        let summary = TraceSummary::from_envelopes(&ring.take());
        println!("\nlatency attribution (also in distributed-events.jsonl):");
        print!("{}", summary.render());
    }
    drop(server); // keep the endpoint alive for the whole run
}

/// `--runs N`: N concurrent GA tenants over one shared slave fleet,
/// driven through the eval server's JSON submit/status/result API.
fn run_multi_tenant(runs: usize, n_slaves: usize, observe_addr: Option<String>) {
    use haplo_ga::net::{
        wire, DatasetLoader, MultiRunApi, RunBoard, RunLauncher, RunSpec, SharedCluster,
    };
    use haplo_ga::observe::ApiHandler;

    println!("spawning {n_slaves} shared evaluation slaves for {runs} tenants ...");
    // Each slave builds a tenant's objective on demand from the columns
    // blob the eval server registers (shipped at most once per slave).
    let loader: DatasetLoader = Arc::new(|_fp, _n_snps, payload: &[u8]| {
        let data = wire::decode_dataset(payload)?;
        StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1)
            .map(|e| Arc::new(e) as Arc<dyn Evaluator>)
            .map_err(|e| e.to_string())
    });
    let cluster = SharedCluster::spawn_shared(n_slaves, loader).expect("shared loopback fleet");
    for s in cluster.slaves() {
        println!("  slave at {}", s.addr());
    }

    // The launcher: what `POST /runs` actually starts. Admission errors
    // (saturated fleet, rejected dataset) surface as typed HTTP statuses.
    let board = RunBoard::new();
    let eval_server = Arc::clone(cluster.server());
    let launch_board = board.clone();
    let launcher: RunLauncher = Arc::new(move |req| {
        let data = haplo_ga::data::synthetic::lille_51(req.seed);
        let payload = wire::encode_dataset(&data);
        let fingerprint = wire::fingerprint(&payload);
        let handle = eval_server.submit_run(
            RunSpec::new(&req.run_id, fingerprint, data.n_snps())
                .with_payload(payload)
                .with_weight(req.weight),
        )?;
        let board = launch_board.clone();
        let run_id = req.run_id.clone();
        let seed = req.seed;
        std::thread::spawn(move || {
            let config = GaConfig {
                population_size: 60,
                max_size: 5,
                stagnation_limit: 20,
                ..GaConfig::default()
            };
            let result = GaEngine::new(&handle, config, seed)
                .expect("valid config")
                .run();
            let best = (2..=5)
                .filter_map(|k| result.best_of_size(k))
                .max_by(|a, b| a.fitness().total_cmp(&b.fitness()));
            board.finish(
                &run_id,
                format!(
                    "{{\"run_id\":\"{run_id}\",\"generations\":{},\"evaluations\":{},\"best\":\"{}\"}}",
                    result.generations,
                    result.total_evaluations,
                    best.map(|b| b.to_string()).unwrap_or_default(),
                ),
            );
        });
        Ok(())
    });
    let api = Arc::new(MultiRunApi::new(
        Arc::clone(cluster.server()),
        launcher,
        board,
    ));

    // With --observe-addr the same API is reachable over HTTP while the
    // tenants run: curl -d '{"run_id":"r9","seed":9}' http://.../runs
    let _endpoint = observe_addr.as_ref().map(|addr| {
        let observer = Observer::new(
            "distributed-multi",
            Arc::new(RingSink::new(1 << 14)),
            Registry::new(),
        );
        let server = ExposeServer::bind_with_api(addr, observer, Arc::clone(&api) as _)
            .expect("bind scrape endpoint");
        println!("\nsubmit/status API live at http://{}/runs", server.addr());
        server
    });

    println!("\nsubmitting {runs} runs through the JSON API ...");
    let t0 = std::time::Instant::now();
    for r in 0..runs {
        // Distinct datasets (different seeds) and priorities per tenant.
        let body = format!(
            "{{\"run_id\":\"run-{r}\",\"seed\":{},\"weight\":{}}}",
            42 + r as u64,
            1 + r % 3
        );
        let resp = api
            .handle("POST", "/runs", "", body.as_bytes())
            .expect("route exists");
        println!("  POST /runs {body} -> {} {}", resp.status, resp.body);
        assert_eq!(resp.status, 202, "admission failed: {}", resp.body);
    }

    // Poll each tenant's result through the same surface.
    for r in 0..runs {
        let path = format!("/runs/run-{r}/result");
        loop {
            let resp = api.handle("GET", &path, "", b"").expect("route exists");
            if resp.status == 200 {
                println!("  GET {path} -> {}", resp.body);
                break;
            }
            assert_eq!(resp.status, 202, "tenant failed: {}", resp.body);
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }
    println!("\nall {runs} tenants done in {:.1?}", t0.elapsed());
    println!("per-slave load across all tenants (shared fleet farming):");
    for (i, s) in cluster.slaves().iter().enumerate() {
        println!("  slave {i}: {} evaluations", s.served());
    }
}
