//! The conclusion's follow-up experiment: "different objective functions
//! are going to be used in order to compare them and to validate their
//! biological interest."
//!
//! This example evaluates a panel of candidate haplotypes under every
//! implemented objective — CLUMP T1/T2/T3/T4 and the EH likelihood-ratio
//! statistic — and compares the rankings they induce (Spearman footrule).
//!
//! ```text
//! cargo run --release --example objectives
//! ```

use haplo_ga::ga::rng::random_haplotype;
use haplo_ga::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const KINDS: [(FitnessKind, &str); 5] = [
    (FitnessKind::ClumpT1, "T1"),
    (FitnessKind::ClumpT2, "T2"),
    (FitnessKind::ClumpT3, "T3"),
    (FitnessKind::ClumpT4, "T4"),
    (FitnessKind::EmLrt, "LRT"),
];

fn ranking(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut rank = vec![0usize; scores.len()];
    for (r, &i) in idx.iter().enumerate() {
        rank[i] = r;
    }
    rank
}

fn main() {
    let data = haplo_ga::data::synthetic::lille_51(42);
    let mut rng = ChaCha8Rng::seed_from_u64(11);

    // Candidate panel: the planted signals plus random size-3 haplotypes.
    let mut candidates: Vec<Vec<SnpId>> = vec![vec![8, 12, 15], vec![18, 26, 50], vec![21, 32, 43]];
    for _ in 0..17 {
        candidates.push(random_haplotype(&mut rng, data.n_snps(), 3).snps().to_vec());
    }

    // Score the panel under every objective.
    let mut scores: Vec<Vec<f64>> = Vec::new();
    for (kind, _) in KINDS {
        let eval = StatsEvaluator::from_dataset(&data, kind).unwrap();
        scores.push(candidates.iter().map(|c| eval.evaluate_one(c)).collect());
    }

    println!("scores of the candidate panel (first 3 rows are planted signals):\n");
    print!("{:<22}", "haplotype");
    for (_, name) in KINDS {
        print!("{name:>10}");
    }
    println!();
    for (i, c) in candidates.iter().enumerate() {
        print!("{:<22}", format!("{c:?}"));
        for s in &scores {
            print!("{:>10.2}", s[i]);
        }
        println!();
    }

    // Pairwise rank agreement (normalized Spearman footrule: 1 = identical).
    println!("\nrank agreement between objectives (1 = identical ranking):\n");
    let ranks: Vec<Vec<usize>> = scores.iter().map(|s| ranking(s)).collect();
    let n = candidates.len();
    let max_footrule = (n * n / 2) as f64;
    print!("{:<6}", "");
    for (_, name) in KINDS {
        print!("{name:>8}");
    }
    println!();
    for (i, (_, name_i)) in KINDS.iter().enumerate() {
        print!("{name_i:<6}");
        for j in 0..KINDS.len() {
            let footrule: usize = ranks[i]
                .iter()
                .zip(&ranks[j])
                .map(|(&a, &b)| a.abs_diff(b))
                .sum();
            print!("{:>8.2}", 1.0 - footrule as f64 / max_footrule);
        }
        println!();
    }

    println!(
        "\nexpected: T1/T2 nearly identical (T2 only collapses rare columns),\n\
         LRT broadly agrees with T1 (both are global-association tests),\n\
         T3/T4 differ more (they reward a single strong haplotype column)."
    );
}
