//! The paper's large-problem experiment: "other experiments, but not so
//! complete, have been done with larger files (249 SNPs) … it has shown a
//! good robustness (solutions provided are similar from one execution to
//! another)."
//!
//! This example runs the GA several times on the 249-SNP scale-up and
//! measures robustness as the per-size agreement between runs: the Jaccard
//! similarity of the best SNP sets and the spread of the best fitness.
//!
//! ```text
//! cargo run --release --example scale_249 [--runs 3]
//! ```

use haplo_ga::prelude::*;

fn jaccard(a: &[SnpId], b: &[SnpId]) -> f64 {
    let sa: std::collections::HashSet<_> = a.iter().collect();
    let sb: std::collections::HashSet<_> = b.iter().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

fn main() {
    let runs: usize = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--runs")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(3);

    let data = haplo_ga::data::synthetic::scale_249(42);
    println!(
        "dataset: {} — {} SNPs, {} individuals\n",
        data.label,
        data.n_snps(),
        data.n_individuals()
    );

    let objective = StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap();
    // A larger panel gets a larger population, as §4.2 prescribes
    // (capacity follows the search-space growth).
    let config = GaConfig {
        population_size: 250,
        stagnation_limit: 40, // demo-scale; the paper used 100
        ..GaConfig::default()
    };

    let mut results: Vec<RunResult> = Vec::new();
    for run in 0..runs {
        let t0 = std::time::Instant::now();
        let result = GaEngine::new(&objective, config.clone(), 100 + run as u64)
            .unwrap()
            .run();
        println!(
            "run {run}: {} generations, {} evaluations in {:.1?}",
            result.generations,
            result.total_evaluations,
            t0.elapsed()
        );
        results.push(result);
    }

    println!("\nper-size robustness across {runs} runs:");
    println!(
        "{:<6} {:<30} {:>10} {:>10} {:>16}",
        "size", "best haplotype (run 0)", "min fit", "max fit", "mean Jaccard"
    );
    for k in 2..=6 {
        let bests: Vec<&Haplotype> = results.iter().filter_map(|r| r.best_of_size(k)).collect();
        if bests.is_empty() {
            continue;
        }
        let fits: Vec<f64> = bests.iter().map(|h| h.fitness()).collect();
        let min = fits.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = fits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Mean pairwise Jaccard similarity of the winning SNP sets.
        let mut sims = Vec::new();
        for i in 0..bests.len() {
            for j in i + 1..bests.len() {
                sims.push(jaccard(bests[i].snps(), bests[j].snps()));
            }
        }
        let mean_sim = if sims.is_empty() {
            1.0
        } else {
            sims.iter().sum::<f64>() / sims.len() as f64
        };
        println!(
            "{:<6} {:<30} {:>10.2} {:>10.2} {:>16.2}",
            k,
            format!("{:?}", bests[0].snps()),
            min,
            max,
            mean_sim
        );
    }
    println!(
        "\nexpected: high fitness agreement (tight min-max) and substantial\n\
         SNP-set overlap across runs — the paper's robustness claim."
    );
}
