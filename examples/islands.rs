//! Island-parallel search: run several GA instances concurrently over the
//! shared objective and merge their per-size champions — the coarse-grained
//! parallel axis complementing the paper's fine-grained master/slaves
//! evaluation (§4.5), and a direct parallelization of its 10-run protocol.
//!
//! ```text
//! cargo run --release --example islands [--islands 4]
//! ```

use haplo_ga::parallel::{run_islands, run_ring_migration, IslandConfig, RingConfig};
use haplo_ga::prelude::*;

fn main() {
    let n_islands: usize = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--islands")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(4);

    let data = haplo_ga::data::synthetic::lille_51(42);
    let objective = StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap();

    let cfg = IslandConfig {
        n_islands,
        base_seed: 300,
        ga: GaConfig {
            stagnation_limit: 30, // shorter per-island runs; the merge
            // recovers the quality a single long run would reach
            ..GaConfig::default()
        },
    };

    println!("running {n_islands} islands concurrently ...");
    let t0 = std::time::Instant::now();
    let result = run_islands(&objective, &cfg);
    println!(
        "done in {:.1?}: {} total evaluations across islands\n",
        t0.elapsed(),
        result.total_evaluations
    );

    println!(
        "{:<6} {:<24} {:>12}   per-island fitness",
        "size", "merged best", "fitness"
    );
    for k in 2..=6 {
        let Some(best) = result.best_of_size(k) else {
            continue;
        };
        let per_island: Vec<String> = result
            .islands
            .iter()
            .map(|r| {
                r.best_of_size(k)
                    .map_or("-".into(), |h| format!("{:.1}", h.fitness()))
            })
            .collect();
        println!(
            "{:<6} {:<24} {:>12.3}   [{}]",
            k,
            format!("{:?}", best.snps()),
            best.fitness(),
            per_island.join(", ")
        );
    }
    println!(
        "\nthe merged champion per size dominates every island — island\n\
         parallelism buys quality (or, equivalently, wall-time at equal\n\
         quality) on top of the evaluation-level parallelism."
    );

    // ---- Ring migration: islands that talk to each other ----
    println!("\nnow with ring migration (champions hop island → island every 10 generations):");
    let ring = RingConfig {
        n_islands,
        base_seed: 300,
        epoch_generations: 10,
        max_rounds: 30,
        ga: GaConfig {
            stagnation_limit: 30,
            ..GaConfig::default()
        },
    };
    let t0 = std::time::Instant::now();
    let result = run_ring_migration(&objective, &ring);
    println!(
        "done in {:.1?}: {} total evaluations\n",
        t0.elapsed(),
        result.total_evaluations
    );
    for k in 2..=6 {
        if let Some(best) = result.best_of_size(k) {
            println!("  size {k}: {best}");
        }
    }
    println!(
        "\nmigration propagates discoveries: a champion found on one island\n\
         seeds its neighbours' subpopulations (and, through inter-population\n\
         crossover, other sizes too)."
    );
}
