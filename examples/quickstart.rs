//! Quickstart: run the paper's full pipeline end-to-end on the synthetic
//! 51-SNP dataset and print the best haplotype per size.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use haplo_ga::prelude::*;

fn main() {
    // 1. Data: a synthetic stand-in for the Lille diabetes/obesity study —
    //    176 individuals (53 affected / 53 unaffected / 70 unknown), 51 SNPs.
    let data = haplo_ga::data::synthetic::lille_51(42);
    let (affected, unaffected, unknown) = data.group_sizes();
    println!("dataset: {} ({} SNPs)", data.label, data.n_snps());
    println!("groups: {affected} affected / {unaffected} unaffected / {unknown} unknown\n");

    // 2. Objective: EH-DIALL haplotype-frequency estimation per group, then
    //    CLUMP's T1 chi-square on the concatenated table (paper Figure 3).
    let objective = StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1)
        .expect("both status groups are present");
    let counted = CountingEvaluator::new(objective);

    // 3. Parallel evaluation: synchronous master/slaves (paper Figure 6).
    let n_workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let evaluator = MasterSlaveEvaluator::new(counted, n_workers);

    // 4. The adaptive multi-population GA with the paper's §5.2.1 defaults:
    //    population 150, sizes 2..=6, stagnation 100, RI stagnation 20.
    let config = GaConfig::default();
    println!(
        "running GA: population {}, sizes {}..={}, {} slaves",
        config.population_size, config.min_size, config.max_size, n_workers
    );
    let t0 = std::time::Instant::now();
    let result = GaEngine::new(&evaluator, config, 2026)
        .expect("valid configuration")
        .run();
    let elapsed = t0.elapsed();

    // 5. Report, Table-2 style.
    println!(
        "\nfinished in {:.1?}: {} generations, {} evaluations\n",
        elapsed, result.generations, result.total_evaluations
    );
    println!(
        "{:<6} {:<22} {:>12} {:>14}",
        "size", "best haplotype", "fitness", "evals-to-best"
    );
    for k in 2..=6 {
        if let Some(best) = result.best_of_size(k) {
            println!(
                "{:<6} {:<22} {:>12.3} {:>14}",
                k,
                format!("{:?}", best.snps()),
                best.fitness(),
                result.evals_to_best_of_size(k).unwrap_or(0),
            );
        }
    }
    println!(
        "\nevaluations actually computed: {}",
        evaluator.inner().count()
    );
}
