//! The full paper workflow on the (synthetic) Lille dataset:
//!
//! 1. build the three input tables of §5.1 — genotypes, per-SNP allele
//!    frequencies, pairwise LD — and write them as TSV;
//! 2. enumerate the small sizes exhaustively (the §3 landscape study);
//! 3. run the adaptive multi-population GA *with the §2.3 feasibility
//!    constraints* enforced;
//! 4. report CLUMP Monte-Carlo significance for the winning haplotypes —
//!    what the biologists actually read.
//!
//! ```text
//! cargo run --release --example lille_study
//! ```

use haplo_ga::data::constraints::HaplotypeConstraints;
use haplo_ga::data::io::{write_freq_tsv, write_ld_tsv};
use haplo_ga::data::{write_dataset_tsv, AlleleFreqTable, LdTable};
use haplo_ga::enumeration::landscape_report;
use haplo_ga::ga::engine::FeasibilityFilter;
use haplo_ga::prelude::*;
use haplo_ga::stats::ClumpStatistic;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    // ---- 1. Data and the paper's auxiliary tables ----
    let data = haplo_ga::data::synthetic::lille_51(42);
    let freqs = AlleleFreqTable::from_matrix(&data.genotypes);
    let ld = LdTable::from_matrix(&data.genotypes);

    let out = std::env::temp_dir().join("haplo-ga-lille");
    std::fs::create_dir_all(&out).expect("create output dir");
    write_dataset_tsv(
        &data,
        std::fs::File::create(out.join("genotypes.tsv")).unwrap(),
    )
    .expect("write genotypes");
    write_freq_tsv(
        &freqs,
        std::fs::File::create(out.join("frequencies.tsv")).unwrap(),
    )
    .expect("write frequencies");
    write_ld_tsv(&ld, std::fs::File::create(out.join("ld.tsv")).unwrap()).expect("write LD");
    println!("input tables written to {}\n", out.display());

    // ---- 2. Landscape study (sizes 2-3; size 4 takes ~a minute) ----
    let pipeline = EvalPipeline::new(&data, FitnessKind::ClumpT1).unwrap();
    let objective = StatsEvaluator::new(pipeline.clone());
    println!("landscape (exhaustive, sizes 2-3):");
    let report = landscape_report(&objective, 2, 3, 5);
    for s in &report.sizes {
        println!(
            "  size {}: {} haplotypes, max {:.2}, mean {:.2}",
            s.size, s.n_enumerated, s.max_fitness, s.mean_fitness
        );
    }
    println!(
        "  top size-3 containing best size-2: {:.0}%\n",
        report.best_nested_fraction[0] * 100.0
    );

    // ---- 3. GA with §2.3 feasibility constraints ----
    let constraints = HaplotypeConstraints {
        max_pairwise_r2: 0.8, // s1: no near-duplicate tag SNPs
        min_maf_difference: 0.0,
        min_maf: 0.05, // drop near-monomorphic markers
    };
    let filter: FeasibilityFilter = {
        let freqs = freqs.clone();
        let ld = ld.clone();
        Arc::new(move |snps: &[SnpId]| constraints.is_feasible(snps, &freqs, &ld))
    };
    let evaluator = CountingEvaluator::new(objective);
    let config = GaConfig {
        stagnation_limit: 50, // shorter demo run than the paper's 100
        ..GaConfig::default()
    };
    println!(
        "running constrained GA (r2 < {}, MAF >= {}) ...",
        constraints.max_pairwise_r2, constraints.min_maf
    );
    let result = GaEngine::new(&evaluator, config, 7)
        .unwrap()
        .with_feasibility(filter)
        .run();
    println!(
        "done: {} generations, {} evaluations\n",
        result.generations, result.total_evaluations
    );

    // ---- 4. Significance report for the champions ----
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    println!(
        "{:<6} {:<24} {:>10} {:>10} {:>12}",
        "size", "best haplotype", "T1", "asym p", "MC p (1000)"
    );
    for k in 2..=6 {
        let Some(best) = result.best_of_size(k) else {
            continue;
        };
        let clump = pipeline
            .clump_analysis(best.snps(), 1000, &mut rng)
            .expect("champion haplotype evaluates");
        println!(
            "{:<6} {:<24} {:>10.3} {:>10.2e} {:>12.4}",
            k,
            format!("{:?}", best.snps()),
            clump.statistic(ClumpStatistic::T1),
            clump.t1_asymptotic_p,
            clump.mc_p_value(ClumpStatistic::T1).unwrap(),
        );
    }

    // ---- 5. Which haplotype carries the risk? (odds ratios) ----
    if let Some(best) = result.best_of_size(3) {
        println!(
            "\nper-haplotype risk for the size-3 champion {:?}:",
            best.snps()
        );
        let detail = pipeline
            .evaluate_detailed(best.snps())
            .expect("champion evaluates");
        let risks = haplo_ga::stats::assoc::risk_report(&detail, 3.0).expect("two-row table");
        for r in risks.iter().take(5) {
            println!(
                "  {}  affected {:>6.1} / unaffected {:>6.1}  OR {:.2} [{:.2}, {:.2}]  p {:.4}",
                r.label,
                r.affected_count,
                r.unaffected_count,
                r.odds_ratio.or,
                r.odds_ratio.ci_low,
                r.odds_ratio.ci_high,
                r.fisher_p
            );
        }
    }
}
