//! Integration: the GA against ground truth.
//!
//! The decisive end-to-end check mirrors the paper's validation protocol
//! (§5.2): compare the GA's per-size champions with the exact optima from
//! exhaustive enumeration, on the real objective.

use haplo_ga::enumeration::exhaustive_top_k;
use haplo_ga::prelude::*;

fn small_config() -> GaConfig {
    GaConfig {
        population_size: 60,
        min_size: 2,
        max_size: 3,
        matings_per_generation: 10,
        stagnation_limit: 20,
        ri_stagnation: 8,
        max_generations: 120,
        ..GaConfig::default()
    }
}

#[test]
fn ga_matches_exhaustive_optimum_on_size_2() {
    let data = haplo_ga::data::synthetic::lille_51(42);
    let objective = StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap();

    // Ground truth: C(51, 2) = 1275 — exhaustively enumerable.
    let exact = exhaustive_top_k(&objective, 2, 1);
    let optimum = exact.best().expect("non-empty space");

    let result = GaEngine::new(&objective, small_config(), 0).unwrap().run();
    let ga_best = result.best_of_size(2).expect("size-2 champion");
    assert_eq!(
        ga_best.snps(),
        &optimum.snps[..],
        "GA best {:?} ({:.3}) vs exact {:?} ({:.3})",
        ga_best.snps(),
        ga_best.fitness(),
        optimum.snps,
        optimum.fitness
    );
    // And it must get there while exploring a fraction of the space the
    // GA actually evaluated (duplicates excluded by the replacement rule).
    assert!(result.total_evaluations > 0);
}

#[test]
fn ga_improves_monotonically_per_size() {
    let data = haplo_ga::data::synthetic::lille_51(42);
    let objective = StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap();
    let result = GaEngine::new(&objective, small_config(), 5).unwrap().run();
    // The recorded per-size best trace in history is non-decreasing.
    for size_idx in 0..2 {
        let mut prev = f64::NEG_INFINITY;
        for g in &result.history {
            let f = g.best_per_size[size_idx];
            if f.is_nan() {
                continue;
            }
            assert!(
                f >= prev - 1e-12,
                "per-size best regressed at generation {}",
                g.generation
            );
            prev = f;
        }
    }
}

#[test]
fn cached_and_uncached_runs_agree() {
    let data = haplo_ga::data::synthetic::lille_51(42);
    let plain = StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap();
    let cached =
        CachingEvaluator::new(StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap());
    let r1 = GaEngine::new(&plain, small_config(), 9).unwrap().run();
    let r2 = GaEngine::new(&cached, small_config(), 9).unwrap().run();
    // The evaluation function is pure, so the cache must not change the
    // trajectory at all.
    assert_eq!(r1.generations, r2.generations);
    assert_eq!(r1.total_evaluations, r2.total_evaluations);
    assert_eq!(
        r1.best_of_size(3).unwrap().snps(),
        r2.best_of_size(3).unwrap().snps()
    );
}

#[test]
fn full_scheme_is_competitive_with_baseline_at_small_scale() {
    // Smoke version of the §5.2 comparison. At this debug-test scale
    // (4 seeds, sizes 2-3, tiny budget) the scheme ranking is noise-bound —
    // the full-budget comparison is the `ablation` harness binary
    // (`cargo run --release -p bench --bin ablation`), whose output is
    // recorded in EXPERIMENTS.md. Here we only require the full scheme to
    // stay in the same quality band as the stripped-down baseline.
    let data = haplo_ga::data::synthetic::lille_51(42);
    let objective = StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap();
    let tight = GaConfig {
        stagnation_limit: 8,
        max_generations: 25,
        ..small_config()
    };
    let mean_best = |scheme: Scheme| -> f64 {
        (0..4)
            .map(|seed| {
                let cfg = GaConfig {
                    scheme,
                    ..tight.clone()
                };
                GaEngine::new(&objective, cfg, seed)
                    .unwrap()
                    .run()
                    .best_of_size(3)
                    .map_or(0.0, |h| h.fitness())
            })
            .sum::<f64>()
            / 4.0
    };
    let full = mean_best(Scheme::FULL);
    let baseline = mean_best(Scheme::BASELINE);
    assert!(
        full >= baseline * 0.75,
        "full {full:.2} unexpectedly far below baseline {baseline:.2}"
    );
}

#[test]
fn run_result_reporting_is_coherent() {
    let data = haplo_ga::data::synthetic::lille_51(42);
    let objective = StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap();
    let counted = CountingEvaluator::new(objective);
    let result = GaEngine::new(&counted, small_config(), 3).unwrap().run();
    assert_eq!(result.total_evaluations, counted.count());
    for k in 2..=3 {
        let best = result.best_of_size(k).unwrap();
        assert_eq!(best.size(), k);
        assert!(best.is_evaluated());
        let evals = result.evals_to_best_of_size(k).unwrap();
        assert!(evals <= result.total_evaluations);
    }
    assert!(result.best_of_size(4).is_none());
    assert_eq!(result.history.len(), result.generations);
}
