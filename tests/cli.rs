//! Integration: the `hga` command-line binary, end to end through real
//! process invocations (cargo builds the binary and exposes its path via
//! `CARGO_BIN_EXE_hga`).

use std::path::PathBuf;
use std::process::Command;

fn hga() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hga"))
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hga-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = hga().output().expect("run hga");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn unknown_command_fails() {
    let out = hga().arg("frobnicate").output().expect("run hga");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_qc_eval_enumerate_pipeline() {
    let dir = workdir();
    let out_dir = dir.join("study");

    // generate
    let out = hga()
        .args(["generate", "--snps", "51", "--seed", "7", "--out"])
        .arg(&out_dir)
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let genotypes = out_dir.join("genotypes.tsv");
    assert!(genotypes.exists());
    assert!(out_dir.join("frequencies.tsv").exists());
    assert!(out_dir.join("ld.tsv").exists());

    // qc
    let out = hga()
        .arg("qc")
        .arg("--data")
        .arg(&genotypes)
        .output()
        .expect("run qc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("176 individuals"), "qc output: {text}");
    assert!(text.contains("HWE"));

    // eval of the planted signal
    let out = hga()
        .arg("eval")
        .arg("--data")
        .arg(&genotypes)
        .args(["--snps", "8,12,15"])
        .output()
        .expect("run eval");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fitness"), "eval output: {text}");
    assert!(
        text.contains("odds ratio") || text.contains("OR"),
        "eval output: {text}"
    );

    // exhaustive size-2 enumeration (1275 haplotypes, fast)
    let out = hga()
        .arg("enumerate")
        .arg("--data")
        .arg(&genotypes)
        .args(["--size", "2", "--top", "3"])
        .output()
        .expect("run enumerate");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("top 3"), "enumerate output: {text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_command_small_ga() {
    let dir = workdir();
    let out_dir = dir.join("study-run");
    let out = hga()
        .args(["generate", "--snps", "51", "--seed", "3", "--out"])
        .arg(&out_dir)
        .output()
        .expect("generate");
    assert!(out.status.success());

    let out = hga()
        .arg("run")
        .arg("--data")
        .arg(out_dir.join("genotypes.tsv"))
        .args([
            "--max-size",
            "3",
            "--population",
            "40",
            "--stagnation",
            "5",
            "--seed",
            "1",
        ])
        .output()
        .expect("run GA");
    assert!(
        out.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("evals-to-best"), "run output: {text}");
    assert!(text.contains("generations"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_data_flag_reports_error() {
    let out = hga().args(["qc"]).output().expect("run qc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data"));
}

#[test]
fn eval_rejects_bad_snp_list() {
    let dir = workdir();
    let out_dir = dir.join("study-bad");
    hga()
        .args(["generate", "--snps", "51", "--seed", "1", "--out"])
        .arg(&out_dir)
        .output()
        .expect("generate");
    let out = hga()
        .arg("eval")
        .arg("--data")
        .arg(out_dir.join("genotypes.tsv"))
        .args(["--snps", "8,banana"])
        .output()
        .expect("run eval");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad SNP id"));
    std::fs::remove_dir_all(&dir).ok();
}
