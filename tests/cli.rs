//! Integration: the `hga` command-line binary, end to end through real
//! process invocations (cargo builds the binary and exposes its path via
//! `CARGO_BIN_EXE_hga`).

use std::path::PathBuf;
use std::process::Command;

fn hga() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hga"))
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hga-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = hga().output().expect("run hga");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn unknown_command_fails() {
    let out = hga().arg("frobnicate").output().expect("run hga");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_qc_eval_enumerate_pipeline() {
    let dir = workdir();
    let out_dir = dir.join("study");

    // generate
    let out = hga()
        .args(["generate", "--snps", "51", "--seed", "7", "--out"])
        .arg(&out_dir)
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let genotypes = out_dir.join("genotypes.tsv");
    assert!(genotypes.exists());
    assert!(out_dir.join("frequencies.tsv").exists());
    assert!(out_dir.join("ld.tsv").exists());

    // qc
    let out = hga()
        .arg("qc")
        .arg("--data")
        .arg(&genotypes)
        .output()
        .expect("run qc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("176 individuals"), "qc output: {text}");
    assert!(text.contains("HWE"));

    // eval of the planted signal
    let out = hga()
        .arg("eval")
        .arg("--data")
        .arg(&genotypes)
        .args(["--snps", "8,12,15"])
        .output()
        .expect("run eval");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fitness"), "eval output: {text}");
    assert!(
        text.contains("odds ratio") || text.contains("OR"),
        "eval output: {text}"
    );

    // exhaustive size-2 enumeration (1275 haplotypes, fast)
    let out = hga()
        .arg("enumerate")
        .arg("--data")
        .arg(&genotypes)
        .args(["--size", "2", "--top", "3"])
        .output()
        .expect("run enumerate");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("top 3"), "enumerate output: {text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_command_small_ga() {
    let dir = workdir();
    let out_dir = dir.join("study-run");
    let out = hga()
        .args(["generate", "--snps", "51", "--seed", "3", "--out"])
        .arg(&out_dir)
        .output()
        .expect("generate");
    assert!(out.status.success());

    let out = hga()
        .arg("run")
        .arg("--data")
        .arg(out_dir.join("genotypes.tsv"))
        .args([
            "--max-size",
            "3",
            "--population",
            "40",
            "--stagnation",
            "5",
            "--seed",
            "1",
        ])
        .output()
        .expect("run GA");
    assert!(
        out.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("evals-to-best"), "run output: {text}");
    assert!(text.contains("generations"));

    std::fs::remove_dir_all(&dir).ok();
}

/// Sum one sched_* column of a history TSV written by `--trace`.
fn column_sum(tsv: &str, name: &str) -> u64 {
    let mut lines = tsv.lines();
    let header: Vec<&str> = lines.next().expect("header").split('\t').collect();
    let idx = header
        .iter()
        .position(|c| *c == name)
        .unwrap_or_else(|| panic!("column {name} missing from {header:?}"));
    lines
        .map(|l| l.split('\t').nth(idx).unwrap().parse::<u64>().unwrap())
        .sum()
}

#[test]
fn cache_dir_warms_across_runs_and_checkpoint_resume_works() {
    let dir = workdir();
    let out_dir = dir.join("study-store");
    let cache_dir = dir.join("fitness-cache");
    let cp = dir.join("cp.json");
    let out = hga()
        .args(["generate", "--snps", "51", "--seed", "9", "--out"])
        .arg(&out_dir)
        .output()
        .expect("generate");
    assert!(out.status.success());
    let genotypes = out_dir.join("genotypes.tsv");

    let run = |trace: &PathBuf, extra: &[&str]| {
        let mut cmd = hga();
        cmd.arg("run")
            .arg("--data")
            .arg(&genotypes)
            .args(["--max-size", "3", "--population", "40", "--stagnation", "5"])
            .args(["--seed", "1"])
            .arg("--cache-dir")
            .arg(&cache_dir)
            .arg("--trace")
            .arg(trace)
            .args(extra);
        let out = cmd.output().expect("run GA");
        assert!(
            out.status.success(),
            "run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    // Cold run: populates the on-disk store and writes checkpoints.
    let t_cold = dir.join("cold.tsv");
    let stdout = run(
        &t_cold,
        &[
            "--save-state",
            cp.to_str().unwrap(),
            "--checkpoint-every",
            "2",
        ],
    );
    assert!(stdout.contains("fitness store"), "stdout: {stdout}");
    assert!(cp.exists(), "checkpoint not written");
    assert!(cache_dir.join("fitness.log").exists(), "disk tier missing");

    // Warm run, same seed: the trajectory revisits exactly the same SNP
    // sets, so nearly everything is served from the store.
    let t_warm = dir.join("warm.tsv");
    run(&t_warm, &[]);
    let cold_tsv = std::fs::read_to_string(&t_cold).unwrap();
    let warm_tsv = std::fs::read_to_string(&t_warm).unwrap();
    let cold_true = column_sum(&cold_tsv, "sched_true_evals");
    let warm_true = column_sum(&warm_tsv, "sched_true_evals");
    let warm_hits = column_sum(&warm_tsv, "sched_cache_hits");
    assert!(cold_true > 0, "cold run did no true evaluations");
    assert!(
        warm_true * 10 <= cold_true,
        "warm run not >=90% served from the store: cold {cold_true}, warm {warm_true}"
    );
    assert!(warm_hits > 0, "warm run recorded no cache hits");

    // Resume from the periodic checkpoint: continues and terminates.
    let t_res = dir.join("resumed.tsv");
    let stdout = run(&t_res, &["--resume", cp.to_str().unwrap()]);
    assert!(stdout.contains("resuming from"), "stdout: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_data_flag_reports_error() {
    let out = hga().args(["qc"]).output().expect("run qc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data"));
}

#[test]
fn eval_rejects_bad_snp_list() {
    let dir = workdir();
    let out_dir = dir.join("study-bad");
    hga()
        .args(["generate", "--snps", "51", "--seed", "1", "--out"])
        .arg(&out_dir)
        .output()
        .expect("generate");
    let out = hga()
        .arg("eval")
        .arg("--data")
        .arg(out_dir.join("genotypes.tsv"))
        .args(["--snps", "8,banana"])
        .output()
        .expect("run eval");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad SNP id"));
    std::fs::remove_dir_all(&dir).ok();
}
