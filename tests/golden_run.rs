//! Whole-run golden equivalence: swapping the legacy allocating evaluation
//! kernel for the scratch-workspace kernel must leave the GA's trajectory
//! untouched — same RNG draws, same best haplotypes, same history TSV.

#![allow(deprecated)] // drives the legacy kernel as the golden reference

use haplo_ga::ga::evaluator::FnEvaluator;
use haplo_ga::ga::telemetry::write_history_tsv;
use haplo_ga::prelude::*;
use haplo_ga::stats::EvalPipeline;

fn config() -> GaConfig {
    GaConfig {
        population_size: 40,
        min_size: 2,
        max_size: 4,
        matings_per_generation: 8,
        stagnation_limit: 10,
        ri_stagnation: 5,
        max_generations: 30,
        ..GaConfig::default()
    }
}

#[test]
fn scratch_kernel_reproduces_legacy_run_exactly() {
    let data = haplo_ga::data::synthetic::lille_51(42);

    // Reference: the pre-refactor evaluation path, verbatim.
    let legacy_pipeline = EvalPipeline::new(&data, FitnessKind::ClumpT1).unwrap();
    let n_snps = legacy_pipeline.n_snps();
    let legacy_objective = FnEvaluator::new(n_snps, move |snps: &[usize]| {
        legacy_pipeline.evaluate_legacy(snps).unwrap_or(0.0)
    });

    // Under test: the production evaluator on the scratch path.
    let scratch_objective = StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap();

    for seed in [0u64, 7] {
        let legacy = GaEngine::new(&legacy_objective, config(), seed)
            .unwrap()
            .run();
        let fast = GaEngine::new(&scratch_objective, config(), seed)
            .unwrap()
            .run();

        // Identical fitness values ⇒ identical selection decisions ⇒ the
        // RNG trajectory never diverges.
        assert_eq!(legacy.generations, fast.generations, "seed {seed}");
        assert_eq!(
            legacy.total_evaluations, fast.total_evaluations,
            "seed {seed}"
        );
        for k in 2..=4 {
            let (a, b) = (legacy.best_of_size(k), fast.best_of_size(k));
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.snps(), b.snps(), "seed {seed} size {k}");
                    assert_eq!(
                        a.fitness().to_bits(),
                        b.fitness().to_bits(),
                        "seed {seed} size {k}"
                    );
                }
                (None, None) => {}
                _ => panic!("seed {seed} size {k}: champion present on one path only"),
            }
        }

        // The full per-generation history serializes identically.
        let mut legacy_tsv = Vec::new();
        write_history_tsv(&legacy, &mut legacy_tsv).unwrap();
        let mut fast_tsv = Vec::new();
        write_history_tsv(&fast, &mut fast_tsv).unwrap();
        let legacy_tsv = String::from_utf8(legacy_tsv).unwrap();
        let fast_tsv = String::from_utf8(fast_tsv).unwrap();
        // Wall-clock columns legitimately differ between runs; compare
        // every other column.
        let strip = |tsv: &str| -> Vec<Vec<String>> {
            let mut rows: Vec<Vec<String>> = tsv
                .lines()
                .map(|l| l.split('\t').map(str::to_owned).collect())
                .collect();
            let header: &Vec<String> = &rows[0];
            let drop_cols: Vec<usize> = header
                .iter()
                .enumerate()
                .filter(|(_, name)| name.contains("ms"))
                .map(|(i, _)| i)
                .collect();
            for row in &mut rows {
                for &i in drop_cols.iter().rev() {
                    row.remove(i);
                }
            }
            rows
        };
        assert_eq!(strip(&legacy_tsv), strip(&fast_tsv), "seed {seed}");
    }
}
