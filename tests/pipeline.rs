//! Integration: data substrate → statistical pipeline.
//!
//! Exercises the full Figure-3 evaluation chain on the synthetic Lille
//! dataset and checks that the statistics see the planted biology.

use haplo_ga::data::synthetic::{lille_51, lille_51_config};
use haplo_ga::data::{AlleleFreqTable, ColumnMatrix, LdTable, Status};
use haplo_ga::stats::em::{EmEstimator, EmScratch};
use haplo_ga::stats::{EvalPipeline, FitnessKind, HaplotypeDist};

#[test]
fn em_recovers_planted_risk_haplotype_in_affected_group() {
    let data = lille_51(42);
    let snps = [8usize, 12, 15];
    // The column-store EM path: select the status group once, then fit
    // in-place (no per-individual genotype Vecs).
    let estimator = EmEstimator::default();
    let mut scratch = EmScratch::new();
    let mut fit = HaplotypeDist::empty();
    let affected =
        ColumnMatrix::from_matrix_rows(&data.genotypes, &data.rows_with_status(Status::Affected))
            .unwrap();
    estimator
        .estimate_into(&[&affected], &snps, &mut scratch, &mut fit)
        .unwrap();
    // The planted risk pattern is all-A2 = bitmask 0b111; it must be much
    // more frequent among affected than its population carrier frequency
    // would suggest under no ascertainment... at minimum, clearly present.
    let risk_freq = fit.freqs[0b111];
    assert!(
        risk_freq > 0.15,
        "risk haplotype frequency among affected = {risk_freq:.3}"
    );

    // And rarer among unaffected — same scratch, reused.
    let mut fit_u = HaplotypeDist::empty();
    let unaffected =
        ColumnMatrix::from_matrix_rows(&data.genotypes, &data.rows_with_status(Status::Unaffected))
            .unwrap();
    estimator
        .estimate_into(&[&unaffected], &snps, &mut scratch, &mut fit_u)
        .unwrap();
    assert!(
        risk_freq > fit_u.freqs[0b111] + 0.05,
        "affected {risk_freq:.3} vs unaffected {:.3}",
        fit_u.freqs[0b111]
    );
}

#[test]
fn pipeline_scores_signal_above_random_triples() {
    let data = lille_51(42);
    let pipeline = EvalPipeline::new(&data, FitnessKind::ClumpT1).unwrap();
    let signal = pipeline.evaluate(&[8, 12, 15]).unwrap();
    // Median of a handful of arbitrary triples far from the signals.
    let mut noise: Vec<f64> = [
        [0, 1, 2],
        [5, 30, 40],
        [10, 35, 46],
        [3, 23, 37],
        [6, 28, 41],
    ]
    .iter()
    .map(|c| pipeline.evaluate(c).unwrap())
    .collect();
    noise.sort_by(f64::total_cmp);
    let median = noise[noise.len() / 2];
    // The planted signal must clearly exceed typical background triples.
    // (It need not be the global optimum: case-control ascertainment plus
    // block LD legitimately make tag-SNP combinations score even higher —
    // that is precisely the linkage-disequilibrium mapping the paper runs.)
    assert!(
        signal > 1.5 * median,
        "signal {signal:.2} vs median noise {median:.2}"
    );
}

#[test]
fn frequency_and_ld_tables_are_consistent_with_pipeline_view() {
    let data = lille_51(42);
    let freqs = AlleleFreqTable::from_matrix(&data.genotypes);
    // The generator draws founder MAFs in 0.15..0.5, so most SNPs stay
    // polymorphic after sampling drift. The exact count depends on the RNG
    // backend (different `rand` implementations drift differently), so only
    // require a solid majority — plus the planted signal SNPs, which the
    // rest of this suite depends on.
    let poly = freqs.polymorphic_snps(0.01);
    assert!(
        poly.len() >= 35,
        "only {} of 51 SNPs polymorphic",
        poly.len()
    );
    for snp in [8usize, 12, 15] {
        assert!(
            poly.contains(&snp),
            "planted signal SNP {snp} drifted to monomorphic"
        );
    }

    // Planted-signal SNPs must show pairwise LD above the panel median.
    let ld = LdTable::from_matrix(&data.genotypes);
    let mut all_r2: Vec<f64> = ld.iter().map(|(_, _, l)| l.r2).collect();
    all_r2.sort_by(f64::total_cmp);
    let median_r2 = all_r2[all_r2.len() / 2];
    let signal_r2 = ld.get(8, 12).r2;
    assert!(
        signal_r2 > median_r2,
        "signal r2 {signal_r2:.4} vs median {median_r2:.4}"
    );
}

#[test]
fn unknown_individuals_do_not_affect_the_objective() {
    // Evaluations only use affected + unaffected rows; adding or removing
    // unknowns must not change fitness values.
    let mut cfg = lille_51_config();
    cfg.n_unknown = 0;
    let without_unknown = cfg.generate(42).unwrap();
    let full = lille_51(42);

    let p_full = EvalPipeline::new(&full, FitnessKind::ClumpT1).unwrap();
    let p_cut = EvalPipeline::new(&without_unknown, FitnessKind::ClumpT1).unwrap();
    // Note: generation interleaves draws, so the two datasets differ as a
    // whole — but each pipeline must at least expose identical group sizes
    // and produce finite, comparable scores.
    assert_eq!(p_full.group_sizes(), (53, 53));
    assert_eq!(p_cut.group_sizes(), (53, 53));
    let a = p_full.evaluate(&[8, 12, 15]).unwrap();
    let b = p_cut.evaluate(&[8, 12, 15]).unwrap();
    assert!(a.is_finite() && b.is_finite());
}

#[test]
fn clump_significance_flags_the_signal_not_the_noise() {
    use rand::SeedableRng;
    let data = lille_51(42);
    let pipeline = EvalPipeline::new(&data, FitnessKind::ClumpT1).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let sig = pipeline
        .clump_analysis(&[8, 12, 15], 400, &mut rng)
        .unwrap();
    assert!(
        sig.mc_p_value(haplo_ga::stats::ClumpStatistic::T1).unwrap() < 0.05,
        "planted signal should be MC-significant"
    );
}
