//! Property-based tests over the core invariants, spanning all crates.

// When proptest is the offline no-op stub, `proptest!` expands to nothing
// and the whole suite (with its imports and strategies) compiles out.
#![allow(unused_imports, dead_code)]

use haplo_ga::data::{read_dataset_tsv, write_dataset_tsv, Dataset, Genotype, GenotypeMatrix};
use haplo_ga::data::{PairwiseLd, SnpInfo, Status};
use haplo_ga::enumeration::combinations::{rank, unrank};
use haplo_ga::enumeration::count::choose_exact;
use haplo_ga::ga::adaptive::AdaptiveRates;
use haplo_ga::ga::ops::crossover::{inter_crossover, uniform_crossover};
use haplo_ga::ga::ops::mutation::{apply_mutation, MutationKind};
use haplo_ga::ga::rng::random_haplotype;
use haplo_ga::ga::subpop::SubPopulation;
use haplo_ga::prelude::*;
use haplo_ga::stats::em::EmEstimator;
use haplo_ga::stats::mc::sample_fixed_margins;
use haplo_ga::stats::{chi2::pearson_chi2, ContingencyTable};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn genotype_strategy() -> impl Strategy<Value = Genotype> {
    prop_oneof![
        4 => Just(Genotype::HomA1),
        4 => Just(Genotype::Het),
        4 => Just(Genotype::HomA2),
        1 => Just(Genotype::Missing),
    ]
}

fn sample_strategy(k: usize) -> impl Strategy<Value = Vec<Vec<Genotype>>> {
    prop::collection::vec(prop::collection::vec(genotype_strategy(), k), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn em_frequencies_form_a_simplex(gs in sample_strategy(3)) {
        let est = EmEstimator::default();
        match est.estimate_iter(gs.iter().map(|v| v.as_slice())) {
            Ok(d) => {
                let sum: f64 = d.freqs.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
                prop_assert!(d.freqs.iter().all(|&f| (-1e-12..=1.0 + 1e-12).contains(&f)));
                prop_assert!(d.log_likelihood <= 1e-9, "LL must be <= 0");
                prop_assert!(d.n_individuals <= gs.len());
            }
            // Only legitimate failure: every individual had a missing call.
            Err(_) => {
                prop_assert!(gs.iter().all(|g| g.contains(&Genotype::Missing)));
            }
        }
    }

    #[test]
    fn em_is_invariant_under_individual_permutation(gs in sample_strategy(2)) {
        let est = EmEstimator::default();
        let mut reversed = gs.clone();
        reversed.reverse();
        match (
            est.estimate_iter(gs.iter().map(|v| v.as_slice())),
            est.estimate_iter(reversed.iter().map(|v| v.as_slice())),
        ) {
            (Ok(a), Ok(b)) => {
                for (x, y) in a.freqs.iter().zip(&b.freqs) {
                    prop_assert!((x - y).abs() < 1e-9);
                }
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "one order failed, the other succeeded"),
        }
    }

    #[test]
    fn chi2_pvalue_is_a_probability(cells in prop::collection::vec(0.0f64..500.0, 6)) {
        let t = ContingencyTable::from_rows(2, 3, cells).unwrap();
        let r = pearson_chi2(&t);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!(r.statistic >= 0.0);
        prop_assert!(r.df >= 0.0);
    }

    #[test]
    fn mc_sampler_preserves_margins(
        rows in prop::collection::vec(1u64..40, 2..4),
        cols_split in 1u64..10,
        seed in any::<u64>(),
    ) {
        // Build column totals that sum to the row total.
        let total: u64 = rows.iter().sum();
        let c0 = total.min(cols_split);
        let cols = vec![c0, total - c0];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = sample_fixed_margins(&rows, &cols, &mut rng).unwrap();
        let row_t: Vec<u64> = t.row_totals().iter().map(|&x| x as u64).collect();
        let col_t: Vec<u64> = t.col_totals().iter().map(|&x| x as u64).collect();
        prop_assert_eq!(row_t, rows);
        prop_assert_eq!(col_t, cols);
    }

    #[test]
    fn pairwise_ld_measures_are_bounded(
        p11 in 0.0f64..1.0, p12 in 0.0f64..1.0, p21 in 0.0f64..1.0, p22 in 0.0f64..1.0
    ) {
        let ld = PairwiseLd::from_haplotype_freqs(p11, p12, p21, p22);
        prop_assert!((-1.0..=1.0).contains(&ld.d_prime), "d' = {}", ld.d_prime);
        prop_assert!((0.0..=1.0).contains(&ld.r2), "r2 = {}", ld.r2);
        prop_assert!(ld.d.abs() <= 0.25 + 1e-12, "|D| <= 1/4");
    }

    #[test]
    fn tsv_roundtrip_any_dataset(
        n_ind in 1usize..12,
        n_snp in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let data: Vec<Genotype> = (0..n_ind * n_snp)
            .map(|_| Genotype::from_u8(rng.random_range(0..4)).unwrap())
            .collect();
        let statuses: Vec<Status> = (0..n_ind)
            .map(|_| match rng.random_range(0..3) {
                0 => Status::Affected,
                1 => Status::Unaffected,
                _ => Status::Unknown,
            })
            .collect();
        let snps: Vec<SnpInfo> = (0..n_snp).map(|i| SnpInfo::synthetic(i, 1, i as f64)).collect();
        let d = Dataset::new(
            GenotypeMatrix::from_rows(n_ind, n_snp, data).unwrap(),
            statuses,
            snps,
            "prop",
        )
        .unwrap();
        let mut buf = Vec::new();
        write_dataset_tsv(&d, &mut buf).unwrap();
        let d2 = read_dataset_tsv(&buf[..], "prop").unwrap();
        prop_assert_eq!(d.genotypes, d2.genotypes);
        prop_assert_eq!(d.statuses, d2.statuses);
    }

    #[test]
    fn rank_unrank_bijection(n in 1usize..16, k_raw in 0usize..6, r_raw in any::<u128>()) {
        let k = k_raw.min(n);
        let total = choose_exact(n as u64, k as u64).unwrap();
        let r = r_raw % total.max(1);
        let subset = unrank(r, n, k);
        prop_assert_eq!(subset.len(), k);
        prop_assert!(subset.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(subset.iter().all(|&s| s < n));
        prop_assert_eq!(rank(&subset, n), r);
    }

    #[test]
    fn subpop_invariants_under_arbitrary_inserts(
        inserts in prop::collection::vec((prop::collection::vec(0usize..20, 3), 0.0f64..100.0), 0..60),
        capacity in 1usize..10,
    ) {
        let mut sp = SubPopulation::new(3, capacity);
        for (snps, fitness) in inserts {
            let mut h = Haplotype::new(snps);
            h.set_fitness(fitness);
            let _ = sp.try_insert(h);
        }
        prop_assert!(sp.check_invariants().is_ok(), "{:?}", sp.check_invariants());
        prop_assert!(sp.len() <= capacity);
    }

    #[test]
    fn crossover_children_respect_encoding(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let p1 = random_haplotype(&mut rng, 30, 4);
        let p2 = random_haplotype(&mut rng, 30, 4);
        let (c1, c2) = uniform_crossover(&p1, &p2, 30, &mut rng);
        for c in [&c1, &c2] {
            prop_assert_eq!(c.size(), 4);
            prop_assert!(c.snps().windows(2).all(|w| w[0] < w[1]));
            prop_assert!(c.snps().iter().all(|&s| s < 30));
        }
        let p3 = random_haplotype(&mut rng, 30, 6);
        let (c3, c4) = inter_crossover(&p1, &p3, 30, &mut rng);
        prop_assert_eq!(c3.size(), 4);
        prop_assert_eq!(c4.size(), 6);
    }

    #[test]
    fn mutations_respect_encoding_and_bounds(seed in any::<u64>(), kind_idx in 0usize..3) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let parent = random_haplotype(&mut rng, 25, 4);
        let kind = MutationKind::from_index(kind_idx).unwrap();
        for child in apply_mutation(kind, &parent, 25, 2, 6, 3, &mut rng) {
            prop_assert!(child.snps().windows(2).all(|w| w[0] < w[1]));
            prop_assert!(child.snps().iter().all(|&s| s < 25));
            let expected = match kind {
                MutationKind::Snp => 4,
                MutationKind::Reduction => 3,
                MutationKind::Augmentation => 5,
            };
            prop_assert_eq!(child.size(), expected);
        }
    }

    #[test]
    fn adaptive_rates_always_sum_to_global_and_respect_floor(
        progresses in prop::collection::vec((0usize..3, -1.0f64..1.0), 0..50),
        generations in 1usize..5,
    ) {
        let mut a = AdaptiveRates::new(3, 0.9, 0.05, true);
        for _ in 0..generations {
            for &(op, p) in &progresses {
                a.record(op, p);
            }
            a.end_generation();
            let sum: f64 = a.rates().iter().sum();
            prop_assert!((sum - 0.9).abs() < 1e-9, "sum = {sum}");
            for &r in a.rates() {
                prop_assert!(r >= 0.05 - 1e-9, "rate {r} below floor");
            }
        }
    }
}
