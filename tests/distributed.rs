//! Integration: the TCP (PVM-equivalent) evaluation substrate under the
//! real objective, plus telemetry/diversity analysis of a live run.

use haplo_ga::ga::diversity;
use haplo_ga::ga::telemetry;
use haplo_ga::ga::{GaRun, StepOutcome};
use haplo_ga::net::LocalCluster;
use haplo_ga::prelude::*;

fn config() -> GaConfig {
    GaConfig {
        population_size: 50,
        min_size: 2,
        max_size: 3,
        matings_per_generation: 8,
        stagnation_limit: 10,
        max_generations: 40,
        ..GaConfig::default()
    }
}

fn objective() -> StatsEvaluator {
    let data = haplo_ga::data::synthetic::lille_51(42);
    StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap()
}

#[test]
fn tcp_cluster_reproduces_the_in_process_trajectory() {
    let reference = GaEngine::new(&objective(), config(), 3).unwrap().run();

    let cluster = LocalCluster::spawn(3, objective).expect("loopback cluster");
    let result = GaEngine::new(cluster.pool(), config(), 3).unwrap().run();

    assert_eq!(result.total_evaluations, reference.total_evaluations);
    assert_eq!(result.generations, reference.generations);
    assert_eq!(
        result.best_of_size(3).unwrap().snps(),
        reference.best_of_size(3).unwrap().snps()
    );
    // Every evaluation went over the wire.
    assert_eq!(cluster.total_served(), result.total_evaluations);
    assert_eq!(cluster.pool().alive(), 3);
    assert!(cluster.pool().dead_slaves().is_empty());
}

#[test]
fn telemetry_describes_a_real_run() {
    let eval = objective();
    let result = GaEngine::new(&eval, config(), 9).unwrap().run();
    let report = telemetry::analyze(&result);
    // Every size improved at least once past initialization or holds its
    // initial champion; curves end at the champions.
    for curve in &report.convergence {
        if let Some(best) = result.best_of_size(curve.size) {
            if let Some(&(_, last)) = curve.points.last() {
                assert!(last <= best.fitness() + 1e-12);
            }
        }
    }
    // Rates are proper distributions of the family budget.
    let msum: f64 = report.mutation_rates.iter().map(|r| r.overall).sum();
    assert!((msum - 0.9).abs() < 1e-9);
    assert!(report.last_improvement <= result.generations);
}

#[test]
fn diversity_decays_as_the_population_converges() {
    let eval = objective();
    let mut run = GaRun::new(&eval, config(), 4, None).unwrap();
    let early = diversity::measure(run.population().get(3).unwrap());
    loop {
        match run.step() {
            StepOutcome::StagnationLimitReached | StepOutcome::GenerationCapReached => break,
            _ => {}
        }
    }
    let late = diversity::measure(run.population().get(3).unwrap());
    // A random initial population is near-maximally diverse; selection
    // concentrates it.
    assert!(early.mean_jaccard_distance > 0.5, "early {early:?}");
    assert!(
        late.mean_jaccard_distance < early.mean_jaccard_distance,
        "late {late:?} vs early {early:?}"
    );
    assert!(late.snps_used <= early.snps_used);
}
