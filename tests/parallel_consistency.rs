//! Integration: parallel evaluators are drop-in replacements.
//!
//! The paper's master/slaves layer must change wall-clock behaviour only —
//! every evaluator (sequential, master/slaves, rayon, cached, timed) must
//! produce the identical GA trajectory because the objective is pure and
//! all randomness lives in the engine's seeded RNG.

use haplo_ga::parallel::{run_islands, IslandConfig};
use haplo_ga::prelude::*;

fn config() -> GaConfig {
    GaConfig {
        population_size: 50,
        min_size: 2,
        max_size: 3,
        matings_per_generation: 8,
        stagnation_limit: 10,
        max_generations: 40,
        ..GaConfig::default()
    }
}

fn objective() -> StatsEvaluator {
    let data = haplo_ga::data::synthetic::lille_51(42);
    StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap()
}

fn fingerprint(r: &RunResult) -> (u64, usize, Vec<Vec<SnpId>>) {
    (
        r.total_evaluations,
        r.generations,
        (2..=3)
            .filter_map(|k| r.best_of_size(k).map(|h| h.snps().to_vec()))
            .collect(),
    )
}

#[test]
fn every_evaluator_yields_the_same_trajectory() {
    let sequential = GaEngine::new(&objective(), config(), 77).unwrap().run();
    let reference = fingerprint(&sequential);

    let ms = MasterSlaveEvaluator::new(objective(), 3);
    assert_eq!(
        fingerprint(&GaEngine::new(&ms, config(), 77).unwrap().run()),
        reference,
        "master/slaves deviated"
    );

    let ry = RayonEvaluator::new(objective());
    assert_eq!(
        fingerprint(&GaEngine::new(&ry, config(), 77).unwrap().run()),
        reference,
        "rayon deviated"
    );

    let cached = CachingEvaluator::new(objective());
    assert_eq!(
        fingerprint(&GaEngine::new(&cached, config(), 77).unwrap().run()),
        reference,
        "cache deviated"
    );

    let timed = TimingEvaluator::new(objective());
    assert_eq!(
        fingerprint(&GaEngine::new(&timed, config(), 77).unwrap().run()),
        reference,
        "timing wrapper deviated"
    );
}

#[test]
fn every_backend_performs_identical_true_evaluations() {
    // The scheduler's accounting must agree across dispatch backends: the
    // same seed yields the same champions AND the same number of true
    // (backend-reaching) evaluations whether the batch is computed inline,
    // on a thread pool, or by master/slaves workers.
    let seq = CountingEvaluator::new(objective());
    let r_seq = GaEngine::new(&seq, config(), 91).unwrap().run();
    let seq_count = seq.count();

    let ms = MasterSlaveEvaluator::new(CountingEvaluator::new(objective()), 3);
    let r_ms = GaEngine::new(&ms, config(), 91).unwrap().run();
    let ms_count = ms.inner().count();

    let ry = RayonEvaluator::new(CountingEvaluator::new(objective()));
    let r_ry = GaEngine::new(&ry, config(), 91).unwrap().run();
    let ry_count = ry.inner().count();

    assert_eq!(
        fingerprint(&r_ms),
        fingerprint(&r_seq),
        "master/slaves deviated"
    );
    assert_eq!(fingerprint(&r_ry), fingerprint(&r_seq), "rayon deviated");
    assert_eq!(
        seq_count, ms_count,
        "true-eval counts diverge (master/slaves)"
    );
    assert_eq!(seq_count, ry_count, "true-eval counts diverge (rayon)");
    // With no scheduler cache, every scheduled evaluation reaches the
    // backend, so the engine's metric equals the observed count.
    assert_eq!(r_seq.total_evaluations, seq_count);
    // Scheduler observability rides along in the history.
    assert!(r_seq
        .history
        .iter()
        .all(|g| g.sched.batches >= 2 && g.sched.cache_hits == 0));
}

#[test]
fn stacked_wrappers_compose() {
    // cache(count(master_slave(objective))) — the harness's real stack.
    let stack = CachingEvaluator::new(CountingEvaluator::new(MasterSlaveEvaluator::new(
        objective(),
        2,
    )));
    let result = GaEngine::new(&stack, config(), 77).unwrap().run();
    let sequential = GaEngine::new(&objective(), config(), 77).unwrap().run();
    assert_eq!(fingerprint(&result), fingerprint(&sequential));
    // The inner counter sees only cache misses — at most the engine's count.
    assert!(stack.inner().count() <= result.total_evaluations);
    assert!(stack.inner().count() > 0);
}

#[test]
fn timing_wrapper_observes_figure4_shape_during_a_run() {
    let timed = TimingEvaluator::new(objective());
    let cfg = GaConfig {
        max_size: 4,
        ..config()
    };
    let _ = GaEngine::new(&timed, cfg, 5).unwrap().run();
    let timings = timed.timings();
    // Sizes 2..=4 were all evaluated.
    let sizes: Vec<usize> = timings.iter().map(|t| t.size).collect();
    assert!(sizes.contains(&2) && sizes.contains(&3) && sizes.contains(&4));
    // Mean cost grows with size (Figure 4's shape), with slack for noise.
    let mean = |k: usize| timed.mean_ns_for_size(k).unwrap();
    assert!(
        mean(4) > mean(2),
        "size-4 evals should cost more than size-2: {} vs {}",
        mean(4),
        mean(2)
    );
}

#[test]
fn islands_dominate_their_members_on_the_real_objective() {
    let obj = objective();
    let cfg = IslandConfig {
        n_islands: 3,
        base_seed: 10,
        ga: config(),
    };
    let merged = run_islands(&obj, &cfg);
    for k in 2..=3 {
        let champion = merged.best_of_size(k).unwrap().fitness();
        for island in &merged.islands {
            assert!(champion >= island.best_of_size(k).unwrap().fitness());
        }
    }
}
