//! `hga` — the haplo-ga command line.
//!
//! ```text
//! hga generate --snps 51 --seed 42 --out study/        # synthetic dataset + aux tables
//! hga qc       --data study/genotypes.tsv              # allele freqs, HWE, LD summary
//! hga run      --data study/genotypes.tsv --workers 4  # the adaptive GA
//! hga enumerate --data study/genotypes.tsv --size 3    # exhaustive baseline
//! hga eval     --data study/genotypes.tsv --snps 8,12,15 --mc 1000
//! ```
//!
//! Every subcommand prints a short report to stdout; `--help` lists flags.

use haplo_ga::data::io::{write_freq_tsv, write_ld_tsv};
use haplo_ga::data::synthetic::{lille_51_config, PlantedSignal};
use haplo_ga::data::{read_dataset_tsv, write_dataset_tsv, AlleleFreqTable, Dataset, LdTable};
use haplo_ga::enumeration::exhaustive_top_k;
use haplo_ga::net::{SlaveServer, TcpSlavePool};
use haplo_ga::prelude::*;
use haplo_ga::stats::hwe::hwe_violations;
use haplo_ga::stats::ClumpStatistic;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::Path;
use std::process::ExitCode;

struct Args {
    values: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut values = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a.strip_prefix("--") {
                if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                    values.push((name.to_string(), raw[i + 1].clone()));
                    i += 2;
                } else {
                    flags.push(name.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { values, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn usize_or(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn u64_or(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

fn load_dataset(args: &Args) -> Result<Dataset, String> {
    let path = args
        .get("data")
        .ok_or("missing --data <genotypes.tsv>".to_string())?;
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    read_dataset_tsv(file, path).map_err(|e| format!("parse {path}: {e}"))
}

fn fitness_kind(args: &Args) -> FitnessKind {
    match args.get("fitness").unwrap_or("t1") {
        "t2" => FitnessKind::ClumpT2,
        "t3" => FitnessKind::ClumpT3,
        "t4" => FitnessKind::ClumpT4,
        "lrt" => FitnessKind::EmLrt,
        _ => FitnessKind::ClumpT1,
    }
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let n_snps = args.usize_or("snps", 51);
    let seed = args.u64_or("seed", 42);
    let out = args.get("out").unwrap_or("study");
    let mut cfg = lille_51_config();
    cfg.n_snps = n_snps;
    // Keep planted signals inside the panel.
    cfg.signals
        .retain(|s: &PlantedSignal| s.snps.iter().all(|&snp| snp < n_snps));
    if cfg.signals.is_empty() {
        return Err(format!(
            "panel of {n_snps} SNPs too small for the default planted signals (need >= 51)"
        ));
    }
    let dataset = cfg.generate(seed).map_err(|e| e.to_string())?;
    std::fs::create_dir_all(out).map_err(|e| format!("mkdir {out}: {e}"))?;
    let dir = Path::new(out);
    let write = |name: &str| -> Result<std::fs::File, String> {
        std::fs::File::create(dir.join(name)).map_err(|e| format!("create {name}: {e}"))
    };
    write_dataset_tsv(&dataset, write("genotypes.tsv")?).map_err(|e| e.to_string())?;
    write_freq_tsv(
        &AlleleFreqTable::from_matrix(&dataset.genotypes),
        write("frequencies.tsv")?,
    )
    .map_err(|e| e.to_string())?;
    write_ld_tsv(&LdTable::from_matrix(&dataset.genotypes), write("ld.tsv")?)
        .map_err(|e| e.to_string())?;
    let (a, u, q) = dataset.group_sizes();
    println!(
        "wrote {out}/genotypes.tsv (+frequencies, +ld): {} SNPs, {} individuals ({a}A/{u}U/{q}?) seed {seed}",
        dataset.n_snps(),
        dataset.n_individuals()
    );
    println!(
        "planted signals: {:?}",
        cfg.signals
            .iter()
            .map(|s| s.snps.clone())
            .collect::<Vec<_>>()
    );
    Ok(())
}

fn cmd_qc(args: &Args) -> Result<(), String> {
    let d = load_dataset(args)?;
    let (a, u, q) = d.group_sizes();
    println!(
        "{}: {} individuals ({a} affected / {u} unaffected / {q} unknown), {} SNPs",
        d.label,
        d.n_individuals(),
        d.n_snps()
    );
    let freqs = AlleleFreqTable::from_matrix(&d.genotypes);
    let low_maf: Vec<usize> = freqs
        .iter()
        .filter(|(_, f)| f.maf() < 0.05)
        .map(|(s, _)| s)
        .collect();
    println!("SNPs with MAF < 0.05: {low_maf:?}");
    let call: Vec<usize> = (0..d.n_snps())
        .filter(|&s| d.genotypes.call_rate(s) < 0.95)
        .collect();
    println!("SNPs with call rate < 95%: {call:?}");
    let controls = d.rows_with_status(Status::Unaffected);
    let hwe = hwe_violations(&d.genotypes, &controls, 0.001);
    println!("SNPs violating HWE in controls (p < 0.001): {hwe:?}");
    let ld = LdTable::from_matrix(&d.genotypes);
    let high: Vec<(usize, usize)> = ld
        .iter()
        .filter(|(_, _, l)| l.r2 > 0.8)
        .map(|(i, j, _)| (i, j))
        .collect();
    println!("SNP pairs with r2 > 0.8 (near-duplicate tags): {high:?}");
    Ok(())
}

/// Write a checkpoint atomically (tmp + rename): a `kill -9` mid-write
/// leaves the previous checkpoint intact, never a torn JSON file.
fn write_checkpoint(cp: &haplo_ga::ga::Checkpoint, path: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    let file = std::fs::File::create(&tmp).map_err(|e| format!("create {tmp}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    serde_json::to_writer(&mut w, cp).map_err(|e| format!("write {tmp}: {e}"))?;
    use std::io::Write;
    w.flush().map_err(|e| format!("flush {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("rename {tmp} -> {path}: {e}"))
}

/// Drive a (possibly resumed) run to termination: checkpoint every
/// `--checkpoint-every N` generations, and once more at the end when
/// `--save-state` is given. `store` (from `--cache-dir`) memoizes
/// evaluations across runs under the dataset's content fingerprint.
fn drive<E: Evaluator>(
    evaluator: &E,
    args: &Args,
    config: &GaConfig,
    seed: u64,
    store: Option<haplo_ga::ga::StoreAttachment>,
    observer: &haplo_ga::observe::Observer,
) -> Result<haplo_ga::ga::RunResult, String> {
    use haplo_ga::ga::{Checkpoint, GaRun, StepOutcome};
    let mut run = match args.get("resume") {
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            let cp: Checkpoint = serde_json::from_reader(std::io::BufReader::new(file))
                .map_err(|e| format!("parse {path}: {e}"))?;
            println!(
                "resuming from {path}: generation {}, {} evaluations so far",
                cp.generation, cp.total_evaluations
            );
            GaRun::restore_full(evaluator, cp, None, observer.clone(), store)?
        }
        None => GaRun::new_full(
            evaluator,
            config.clone(),
            seed,
            None,
            None,
            observer.clone(),
            store,
        )?,
    };
    let every = args.usize_or("checkpoint-every", 0);
    let cp_path = args.get("save-state").unwrap_or("hga-checkpoint.json");
    loop {
        let outcome = run.step();
        if every > 0 && run.generation() % every == 0 {
            write_checkpoint(&run.checkpoint(), cp_path)?;
        }
        match outcome {
            StepOutcome::StagnationLimitReached | StepOutcome::GenerationCapReached => break,
            _ => {}
        }
    }
    if args.get("save-state").is_some() {
        write_checkpoint(&run.checkpoint(), cp_path)?;
        println!("checkpoint written to {cp_path}");
    }
    Ok(run.finish())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let d = load_dataset(args)?;
    let kind = fitness_kind(args);
    let objective = StatsEvaluator::from_dataset(&d, kind).map_err(|e| e.to_string())?;
    let workers = args.usize_or("workers", 1);
    let config = GaConfig {
        population_size: args.usize_or("population", 150),
        min_size: args.usize_or("min-size", 2),
        max_size: args.usize_or("max-size", 6),
        stagnation_limit: args.usize_or("stagnation", 100),
        ..GaConfig::default()
    };
    let seed = args.u64_or("seed", 0);
    println!(
        "GA on {} ({:?} fitness), sizes {}..={}, population {}, {} worker(s), seed {seed}",
        d.label, kind, config.min_size, config.max_size, config.population_size, workers
    );
    // `--cache-dir DIR`: a persistent tiered fitness store, keyed by the
    // dataset file's content fingerprint. A second run over the same data
    // (any seed whose trajectory revisits SNP sets) starts warm.
    let store = match args.get("cache-dir") {
        Some(dir) => {
            use haplo_ga::data::DatasetFingerprint;
            use haplo_ga::ga::FitnessStore;
            let data_path = args.get("data").expect("load_dataset checked --data");
            let bytes = std::fs::read(data_path).map_err(|e| format!("read {data_path}: {e}"))?;
            let fp = DatasetFingerprint::from_bytes(&bytes);
            let store = FitnessStore::open(Path::new(dir), args.usize_or("cache-capacity", 65_536))
                .map_err(|e| format!("open fitness store {dir}: {e}"))?;
            println!(
                "fitness store at {dir}: {} entr(ies) on disk, dataset fingerprint {fp}",
                store.disk_len()
            );
            Some((std::sync::Arc::new(store), fp))
        }
        None => None,
    };
    // `--flight-recorder PATH`: a bounded in-memory black box over the
    // run's full event stream, persisted atomically to PATH — every few
    // hundred milliseconds, on panic, and on typed fatal errors — so a
    // crashed run leaves forensics behind (render with `postmortem`).
    let mut _flight_persist = None;
    let observer = match args.get("flight-recorder") {
        Some(path) => {
            use haplo_ga::observe::{FlightRecorder, Observer, Registry, DEFAULT_FLIGHT_CAPACITY};
            let recorder = FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY).with_path(path);
            recorder.install_panic_hook();
            _flight_persist = Some(recorder.persist_every(std::time::Duration::from_millis(250)));
            println!("flight recorder armed: {path}");
            Observer::new(
                format!("hga-{seed}"),
                std::sync::Arc::new(recorder),
                Registry::new(),
            )
        }
        None => haplo_ga::observe::Observer::disabled(),
    };
    let t0 = std::time::Instant::now();
    let result = if let Some(slaves) = args.get("slaves") {
        // Distributed evaluation over TCP slave daemons (`hga slave`).
        let addrs: Vec<String> = slaves.split(',').map(|s| s.trim().to_string()).collect();
        let pool = TcpSlavePool::connect(&addrs).map_err(|e| e.to_string())?;
        pool.set_observer(observer.clone());
        println!("connected to {} remote slave(s)", pool.alive());
        drive(&pool, args, &config, seed, store, &observer)?
    } else if workers > 1 {
        let par = MasterSlaveEvaluator::new(objective, workers);
        drive(&par, args, &config, seed, store, &observer)?
    } else {
        drive(&objective, args, &config, seed, store, &observer)?
    };
    println!(
        "done in {:.1?}: {} generations, {} evaluations\n",
        t0.elapsed(),
        result.generations,
        result.total_evaluations
    );
    // Optional per-generation trace for plotting.
    if let Some(path) = args.get("trace") {
        let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        haplo_ga::ga::telemetry::write_history_tsv(&result, file)
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("history written to {path}");
    }

    // Champions with significance, search-adjusted for the number of
    // candidates the GA actually evaluated (Šidák; conservative).
    let pipeline = EvalPipeline::new(&d, kind).map_err(|e| e.to_string())?;
    println!(
        "{:<6} {:<26} {:>12} {:>14} {:>12} {:>12}",
        "size", "best haplotype", "fitness", "evals-to-best", "p (nominal)", "p (search)"
    );
    for k in result.min_size..=result.min_size + result.best_per_size.len() - 1 {
        if let Some(best) = result.best_of_size(k) {
            let detail = pipeline
                .evaluate_detailed(best.snps())
                .map_err(|e| e.to_string())?;
            let adjusted =
                haplo_ga::stats::assoc::sidak_adjust(detail.chi2.p_value, result.total_evaluations);
            println!(
                "{:<6} {:<26} {:>12.3} {:>14} {:>12.2e} {:>12.4}",
                k,
                format!("{:?}", best.snps()),
                best.fitness(),
                result.evals_to_best_of_size(k).unwrap_or(0),
                detail.chi2.p_value,
                adjusted,
            );
        }
    }
    Ok(())
}

fn cmd_enumerate(args: &Args) -> Result<(), String> {
    let d = load_dataset(args)?;
    let size = args.usize_or("size", 2);
    let top = args.usize_or("top", 10);
    let objective =
        StatsEvaluator::from_dataset(&d, fitness_kind(args)).map_err(|e| e.to_string())?;
    let space = haplo_ga::enumeration::count::choose_f64(d.n_snps() as u64, size as u64);
    println!(
        "exhaustive sweep of C({}, {size}) = {space:.3e} haplotypes ...",
        d.n_snps()
    );
    let t0 = std::time::Instant::now();
    let result = exhaustive_top_k(&objective, size, top);
    println!("done in {:.1?}; top {}:", t0.elapsed(), result.len());
    for h in result.items() {
        println!("  {:?} = {:.3}", h.snps, h.fitness);
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let d = load_dataset(args)?;
    let snps: Vec<usize> = args
        .get("snps")
        .ok_or("missing --snps a,b,c".to_string())?
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|e| format!("bad SNP id {s:?}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let pipeline = EvalPipeline::new(&d, fitness_kind(args)).map_err(|e| e.to_string())?;
    let detail = pipeline
        .evaluate_detailed(&snps)
        .map_err(|e| e.to_string())?;
    println!("haplotype {snps:?} on {}:", d.label);
    println!("  fitness ({:?}) = {:.4}", pipeline.kind(), detail.fitness);
    println!(
        "  chi2 = {:.4} (df {}), asymptotic p = {:.3e}",
        detail.chi2.statistic, detail.chi2.df, detail.chi2.p_value
    );
    let (mode_a, f_a) = detail.affected.mode();
    let (mode_u, f_u) = detail.unaffected.mode();
    println!(
        "  modal haplotype affected: {mode_a:0width$b} ({f_a:.3}); unaffected: {mode_u:0width$b} ({f_u:.3})",
        width = snps.len()
    );
    // Per-haplotype risk summary (odds ratios + Fisher exact p).
    let risks = haplo_ga::stats::assoc::risk_report(&detail, 3.0).map_err(|e| e.to_string())?;
    if !risks.is_empty() {
        println!("  per-haplotype risk (count >= 3, sorted by odds ratio):");
        for r in risks.iter().take(6) {
            println!(
                "    {}  aff {:>6.1} / una {:>6.1}  OR {:.2} [{:.2}, {:.2}]  Fisher p {:.4}",
                r.label,
                r.affected_count,
                r.unaffected_count,
                r.odds_ratio.or,
                r.odds_ratio.ci_low,
                r.odds_ratio.ci_high,
                r.fisher_p
            );
        }
    }
    let n_sims = args.usize_or("mc", 0);
    if n_sims > 0 {
        let mut rng = ChaCha8Rng::seed_from_u64(args.u64_or("seed", 0));
        let clump = pipeline
            .clump_analysis(&snps, n_sims, &mut rng)
            .map_err(|e| e.to_string())?;
        println!("  CLUMP Monte-Carlo ({n_sims} sims):");
        for stat in ClumpStatistic::ALL {
            println!(
                "    {stat:?} = {:.3}, MC p = {:.4}",
                clump.statistic(stat),
                clump.mc_p_value(stat).unwrap()
            );
        }
    }
    Ok(())
}

fn cmd_slave(args: &Args) -> Result<(), String> {
    let d = load_dataset(args)?;
    let objective =
        StatsEvaluator::from_dataset(&d, fitness_kind(args)).map_err(|e| e.to_string())?;
    let bind = args.get("bind").unwrap_or("127.0.0.1:7171");
    let server = SlaveServer::spawn(bind, objective).map_err(|e| e.to_string())?;
    println!(
        "slave serving {} ({} SNPs) on {} — ctrl-c to stop",
        d.label,
        d.n_snps(),
        server.addr()
    );
    // Serve until killed; report throughput every 30 s.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(30));
        println!("served {} evaluations", server.served());
    }
}

const USAGE: &str = "usage: hga <command> [flags]

commands:
  generate   --snps N --seed S --out DIR        synthesize a study dataset
  qc         --data FILE                        marker quality report
  run        --data FILE [--workers N] [--slaves host:port,...]
             [--max-size K] [--population P] [--stagnation G] [--seed S]
             [--fitness t1|t2|t3|t4|lrt] [--trace history.tsv]
             [--save-state cp.json] [--resume cp.json]
             [--checkpoint-every N] [--cache-dir DIR] [--cache-capacity C]
             [--flight-recorder dump.jsonl]
  slave      --data FILE [--bind ADDR]          evaluation slave daemon
  enumerate  --data FILE --size K [--top M]     exhaustive baseline
  eval       --data FILE --snps a,b,c [--mc N]  score one haplotype
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().cloned() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&raw[1..]);
    if args.has("help") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match command.as_str() {
        "generate" => cmd_generate(&args),
        "qc" => cmd_qc(&args),
        "run" => cmd_run(&args),
        "slave" => cmd_slave(&args),
        "enumerate" => cmd_enumerate(&args),
        "eval" => cmd_eval(&args),
        _ => {
            eprint!("unknown command {command:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
