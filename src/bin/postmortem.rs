//! `postmortem` — render a flight-recorder dump into a crash timeline.
//!
//! Reads the JSONL black box a [`ld_observe::FlightRecorder`] dumped
//! (on demand, on panic, on a typed fatal, or periodically) and folds
//! it into the forensics a responder needs first: why the dump exists,
//! the last N generations (with the unfinished one called out),
//! per-slave fault state, the span tail, and any fatal errors.
//!
//! ```text
//! postmortem <dump.jsonl> [--json <out.json>] [--last <N>]
//! ```
//!
//! `--last` widens the generation window (default
//! [`ld_observe::DEFAULT_LAST_GENERATIONS`]); with `--json`, the full
//! fold is also exported as pretty-printed JSON (what the CI
//! crash-forensics job inspects).

use ld_observe::{Postmortem, DEFAULT_LAST_GENERATIONS};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: postmortem <dump.jsonl> [--json <out.json>] [--last <N>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dump_path: Option<&str> = None;
    let mut json_out: Option<&str> = None;
    let mut last_n = DEFAULT_LAST_GENERATIONS;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                json_out = Some(path);
                i += 2;
            }
            "--last" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                last_n = n;
                i += 2;
            }
            "-h" | "--help" => return usage(),
            path if dump_path.is_none() => {
                dump_path = Some(path);
                i += 1;
            }
            _ => return usage(),
        }
    }
    let Some(dump_path) = dump_path else {
        return usage();
    };

    let text = match std::fs::read_to_string(dump_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("postmortem: reading {dump_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pm = Postmortem::from_jsonl(&text, last_n);
    print!("{}", pm.render());

    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(path, pm.to_json()) {
            eprintln!("postmortem: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
