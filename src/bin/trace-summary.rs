//! `trace-summary` — per-generation latency attribution from a run's
//! JSONL event stream.
//!
//! Reads the `SpanClosed` events an observed run wrote (see
//! `ld-observe`'s `JsonlSink`) and prints where each generation's
//! evaluation time went: queue wait, network, slave compute, retry
//! backoff, and the master-side share — the critical path of the
//! distributed evaluation phase.
//!
//! ```text
//! trace-summary <events.jsonl> [--json <out.json>]
//! ```
//!
//! With `--json`, the full per-generation breakdown is also exported as
//! pretty-printed JSON (what the CI fault matrix uploads as artifact).

use ld_observe::TraceSummary;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: trace-summary <events.jsonl> [--json <out.json>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut events_path: Option<&str> = None;
    let mut json_out: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                json_out = Some(path);
                i += 2;
            }
            "-h" | "--help" => return usage(),
            path if events_path.is_none() => {
                events_path = Some(path);
                i += 1;
            }
            _ => return usage(),
        }
    }
    let Some(events_path) = events_path else {
        return usage();
    };

    let text = match std::fs::read_to_string(events_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-summary: reading {events_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = TraceSummary::from_jsonl(&text);
    print!("{}", summary.render());

    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(path, summary.to_json()) {
            eprintln!("trace-summary: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
