//! `dynamics-summary` — search-dynamics trajectory from a run's JSONL
//! event stream.
//!
//! Reads the `Dynamics` (and `Stagnation`/`Converged`) events an
//! observed run wrote (see `ld-observe`'s `JsonlSink`) and prints the
//! per-generation diversity, fixation, fitness-distribution, and
//! operator-economics series as a table with sparklines — the "is this
//! run still searching?" companion to `trace-summary`'s "where did the
//! time go?".
//!
//! ```text
//! dynamics-summary <events.jsonl> [--run <id>] [--json <out.json>]
//! ```
//!
//! Without `--run`, events from every run in the file are folded into
//! one trace (fine for single-tenant streams). With `--json`, the full
//! series is also exported as pretty-printed JSON (what the CI fault
//! matrix uploads as artifact).

use ld_observe::DynamicsTrace;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: dynamics-summary <events.jsonl> [--run <id>] [--json <out.json>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut events_path: Option<&str> = None;
    let mut run_id: Option<&str> = None;
    let mut json_out: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--run" => {
                let Some(id) = args.get(i + 1) else {
                    return usage();
                };
                run_id = Some(id);
                i += 2;
            }
            "--json" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                json_out = Some(path);
                i += 2;
            }
            "-h" | "--help" => return usage(),
            path if events_path.is_none() => {
                events_path = Some(path);
                i += 1;
            }
            _ => return usage(),
        }
    }
    let Some(events_path) = events_path else {
        return usage();
    };

    let text = match std::fs::read_to_string(events_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dynamics-summary: reading {events_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match run_id {
        Some(id) => DynamicsTrace::for_run_jsonl(&text, id),
        None => DynamicsTrace::from_jsonl(&text),
    };
    if trace.is_empty() {
        eprintln!(
            "dynamics-summary: no dynamics events in {events_path}{}",
            run_id.map_or(String::new(), |id| format!(" for run {id}"))
        );
        return ExitCode::FAILURE;
    }
    print!("{}", trace.render());

    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(path, trace.to_json()) {
            eprintln!("dynamics-summary: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
