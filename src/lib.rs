//! # haplo-ga — parallel adaptive GA for linkage disequilibrium in genomics
//!
//! Reproduction of Vermeulen-Jourdan, Dhaenens & Talbi, *"A Parallel
//! Adaptive GA for Linkage Disequilibrium in Genomics"* (IPDPS 2004).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`data`] (`ld-data`) — genotype model, synthetic Lille-like datasets,
//!   allele-frequency / LD tables, §2.3 feasibility constraints;
//! * [`stats`] (`ld-stats`) — EH-DIALL EM estimator, CLUMP T1–T4,
//!   Monte-Carlo significance, the Figure-3 evaluation pipeline;
//! * [`ga`] (`ld-core`) — the dedicated adaptive multi-population GA;
//! * [`parallel`] (`ld-parallel`) — master/slaves and rayon evaluators,
//!   timing metrics, island runners (independent and ring-migration);
//! * [`enumeration`] (`ld-enum`) — exhaustive sweeps, search-space counts,
//!   landscape analysis;
//! * [`net`] (`ld-net`) — distributed master/slaves over TCP, the modern
//!   equivalent of the paper's C/PVM cluster substrate;
//! * [`observe`] (`ld-observe`) — events, metrics, timed span trees,
//!   latency attribution, and the live `/metrics` scrape endpoint.
//!
//! ## Quickstart
//!
//! ```
//! use haplo_ga::prelude::*;
//!
//! // A synthetic stand-in for the paper's 51-SNP Lille dataset.
//! let data = haplo_ga::data::synthetic::lille_51(42);
//! // The paper's objective: EH-DIALL per group, then CLUMP T1.
//! let objective = StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap();
//! // Parallel evaluation, master/slaves style (Figure 6).
//! let evaluator = MasterSlaveEvaluator::new(objective, 4);
//! // A small run of the adaptive multi-population GA (Figure 5).
//! let config = GaConfig {
//!     population_size: 60,
//!     max_size: 4,
//!     stagnation_limit: 10,
//!     max_generations: 30,
//!     ..GaConfig::default()
//! };
//! let result = GaEngine::new(&evaluator, config, 1).unwrap().run();
//! let best = result.best_of_size(3).expect("a size-3 haplotype");
//! assert!(best.fitness() > 0.0);
//! ```

pub use ld_core as ga;
pub use ld_data as data;
pub use ld_enum as enumeration;
pub use ld_net as net;
pub use ld_observe as observe;
pub use ld_parallel as parallel;
pub use ld_stats as stats;

/// One-stop imports for typical use.
pub mod prelude {
    pub use ld_core::{
        CachingEvaluator, CountingEvaluator, Evaluator, GaConfig, GaEngine, Haplotype, RunResult,
        Scheme, StatsEvaluator,
    };
    pub use ld_data::{Dataset, Genotype, SnpId, Status};
    pub use ld_parallel::{MasterSlaveEvaluator, RayonEvaluator, TimingEvaluator};
    pub use ld_stats::{EvalPipeline, FitnessKind};
}
